//! Per-dimension wildcard masks — the flow-cache vocabulary.
//!
//! A [`MaskSummary`] compresses a rule's seven dimension projections into
//! seven 16-bit *care masks*: a set bit means the rule examines that query
//! bit, a clear bit means the rule is wildcard there. Two headers whose
//! masked queries agree under a rule's summary are indistinguishable to
//! that rule — which is what lets a megaflow cache serve one verdict to a
//! whole masked flow class.
//!
//! Per dimension:
//!
//! * **IP segments** — the 16-bit prefix mask (`len` leading ones). Prefix
//!   masks are nested, so OR-folding summaries keeps the longest mask.
//! * **Ports** — `0x0000` for the full wildcard range, `0xFFFF` otherwise:
//!   an arbitrary `[lo, hi]` range has no single bitmask, so any
//!   constrained range demands port equality. Conservative, never wrong.
//! * **Protocol** — `0x0000` for [`crate::ProtoSpec::Any`], `0x00FF` for an
//!   exact value (queries are zero-extended to 16 bits).
//!
//! Folding every installed rule's summary with [`MaskSummary::or`] yields a
//! *global* summary that covers each rule's: headers equal under the fold
//! are equal under every rule's own mask, hence receive the same
//! highest-priority-match verdict (see `docs/flow_cache.md` for the
//! argument).

use crate::{Dim, DimValue, Header, Rule, ALL_DIMS};
use std::fmt;

/// Per-dimension care masks for the seven lookup dimensions, in
/// [`ALL_DIMS`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MaskSummary {
    /// One 16-bit care mask per dimension ([`ALL_DIMS`] order); set bits
    /// are examined by the rule, clear bits are wildcard.
    pub masks: [u16; 7],
}

impl MaskSummary {
    /// The all-wildcard summary (no bit examined in any dimension).
    pub const NONE: MaskSummary = MaskSummary { masks: [0; 7] };

    /// The summary of one rule's seven dimension projections.
    pub fn of_rule(rule: &Rule) -> Self {
        let mut masks = [0u16; 7];
        for (i, dim) in ALL_DIMS.iter().enumerate() {
            masks[i] = dim_care_mask(rule.dim_value(*dim));
        }
        MaskSummary { masks }
    }

    /// Bitwise OR per dimension: the summary that covers both inputs.
    #[must_use]
    pub fn or(self, other: MaskSummary) -> Self {
        let mut masks = self.masks;
        for (m, o) in masks.iter_mut().zip(other.masks) {
            *m |= o;
        }
        MaskSummary { masks }
    }

    /// OR-folds the summaries of every rule in `rules`, starting from
    /// [`MaskSummary::NONE`].
    pub fn fold<'a>(rules: impl IntoIterator<Item = &'a Rule>) -> Self {
        rules
            .into_iter()
            .fold(MaskSummary::NONE, |acc, r| acc.or(MaskSummary::of_rule(r)))
    }

    /// Whether every bit `other` examines is also examined by `self`
    /// (per dimension). When a fold covers a rule's summary, headers
    /// equal under the fold are equal under the rule's own masks.
    pub fn covers(self, other: MaskSummary) -> bool {
        self.masks.iter().zip(other.masks).all(|(&m, o)| m & o == o)
    }

    /// The header's seven query values ANDed with the care masks — the
    /// megaflow cache key: two headers with equal masked queries under a
    /// covering summary are classified identically.
    pub fn masked_query(self, h: &Header) -> [u16; 7] {
        let mut q = [0u16; 7];
        for (i, dim) in ALL_DIMS.iter().enumerate() {
            q[i] = dim.query(h) & self.masks[i];
        }
        q
    }

    /// The care mask for one dimension.
    pub fn mask(self, dim: Dim) -> u16 {
        self.masks[dim.index()]
    }

    /// The *hash-mask* signature of a rule: the per-dimension masks under
    /// which the rule's match condition **is** masked equality, unlike
    /// [`MaskSummary::of_rule`] whose port convention is merely
    /// conservative. IP segments keep their prefix masks and an exact
    /// port or protocol demands full equality, but a proper port *range*
    /// gets mask `0x0000` — an arbitrary `[lo, hi]` has no bitmask, so
    /// the dimension is excluded from the key and must be re-verified
    /// after a key hit. This is the tuple-space grouping signature
    /// (Srinivasan–Suri–Varghese): for every header `h` that matches
    /// `rule`, `sig.masked_query(&h) == sig.masked_rule(&rule)`.
    pub fn hash_signature(rule: &Rule) -> Self {
        let mut masks = [0u16; 7];
        for (i, dim) in ALL_DIMS.iter().enumerate() {
            masks[i] = match rule.dim_value(*dim) {
                DimValue::Seg(s) => prefix_mask16(s.len()),
                DimValue::Port(r) => {
                    if r.is_exact() {
                        0xFFFF
                    } else {
                        0
                    }
                }
                DimValue::Proto(p) => {
                    if p.is_any() {
                        0
                    } else {
                        0x00FF
                    }
                }
            };
        }
        MaskSummary { masks }
    }

    /// The rule's own key under this summary — the masked counterpart of
    /// [`MaskSummary::masked_query`] on the rule side. Each dimension
    /// projects to a canonical 16-bit value (prefix value, range low
    /// bound, protocol number) and is ANDed with the care mask; under
    /// [`MaskSummary::hash_signature`] this equals the masked query of
    /// every header the rule matches.
    pub fn masked_rule(self, rule: &Rule) -> [u16; 7] {
        let mut q = [0u16; 7];
        for (i, dim) in ALL_DIMS.iter().enumerate() {
            let v = match rule.dim_value(*dim) {
                DimValue::Seg(s) => s.value(),
                DimValue::Port(r) => r.lo(),
                DimValue::Proto(p) => match p {
                    crate::ProtoSpec::Any => 0,
                    crate::ProtoSpec::Exact(n) => u16::from(n),
                },
            };
            q[i] = v & self.masks[i];
        }
        q
    }

    /// Whether no dimension examines any bit (the summary of a
    /// match-everything rule, or of an empty fold).
    pub fn is_none(self) -> bool {
        self == MaskSummary::NONE
    }
}

/// The care mask of one dimension projection (see the module docs for
/// the per-kind conventions).
fn dim_care_mask(v: DimValue) -> u16 {
    match v {
        DimValue::Seg(s) => prefix_mask16(s.len()),
        DimValue::Port(r) => {
            if r.is_any() {
                0
            } else {
                0xFFFF
            }
        }
        DimValue::Proto(p) => {
            if p.is_any() {
                0
            } else {
                0x00FF
            }
        }
    }
}

/// `len` leading ones in a 16-bit mask.
fn prefix_mask16(len: u8) -> u16 {
    if len == 0 {
        0
    } else {
        u16::MAX << (16 - u32::from(len.min(16)))
    }
}

impl fmt::Display for MaskSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.masks.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{m:04x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, PortRange, Prefix, Priority, ProtoSpec};

    fn rule() -> Rule {
        Rule::builder(Priority(0))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .dst_ip(Prefix::parse("192.168.1.0/24").unwrap())
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Drop)
            .build()
    }

    #[test]
    fn of_rule_per_dimension() {
        let m = MaskSummary::of_rule(&rule());
        // /8 constrains only the high source segment's first 8 bits.
        assert_eq!(m.mask(Dim::SipHi), 0xff00);
        assert_eq!(m.mask(Dim::SipLo), 0x0000);
        // /24 pins the high destination segment and 8 bits of the low.
        assert_eq!(m.mask(Dim::DipHi), 0xffff);
        assert_eq!(m.mask(Dim::DipLo), 0xff00);
        assert_eq!(m.mask(Dim::SrcPort), 0x0000, "ANY range examines nothing");
        assert_eq!(m.mask(Dim::DstPort), 0xffff, "exact port wants equality");
        assert_eq!(m.mask(Dim::Proto), 0x00ff);
    }

    #[test]
    fn any_rule_is_none() {
        assert!(MaskSummary::of_rule(&Rule::any(Priority(3))).is_none());
        assert!(MaskSummary::NONE.is_none());
        assert!(!MaskSummary::of_rule(&rule()).is_none());
    }

    #[test]
    fn port_ranges_are_conservative() {
        let ranged = Rule::builder(Priority(0))
            .src_port(PortRange::new(1024, 2047).unwrap())
            .build();
        // A proper range has no exact bitmask: demand full equality.
        assert_eq!(MaskSummary::of_rule(&ranged).mask(Dim::SrcPort), 0xffff);
    }

    #[test]
    fn or_and_covers() {
        let a = MaskSummary::of_rule(&rule());
        let b = MaskSummary::of_rule(
            &Rule::builder(Priority(1))
                .src_ip(Prefix::parse("10.1.0.0/16").unwrap())
                .build(),
        );
        let f = a.or(b);
        assert!(f.covers(a) && f.covers(b));
        assert!(!b.covers(a), "/8 examines port+proto bits /16 does not");
        assert_eq!(
            f.mask(Dim::SipHi),
            0xffff,
            "nested prefix masks fold to the longest"
        );
        assert_eq!(MaskSummary::fold([rule()].iter()), a);
        assert_eq!(MaskSummary::fold(std::iter::empty()), MaskSummary::NONE);
    }

    #[test]
    fn masked_query_equality_implies_identical_match() {
        // Headers equal under a covering fold match exactly the same rules.
        let r = rule();
        let fold = MaskSummary::of_rule(&r).or(MaskSummary::of_rule(&Rule::any(Priority(9))));
        let h1 = Header::new([10, 5, 5, 5].into(), [192, 168, 1, 7].into(), 1000, 80, 6);
        let h2 = Header::new([10, 9, 9, 9].into(), [192, 168, 1, 200].into(), 2000, 80, 6);
        assert_eq!(fold.masked_query(&h1), fold.masked_query(&h2));
        assert_eq!(r.matches(&h1), r.matches(&h2));
        let h3 = Header::new([11, 5, 5, 5].into(), [192, 168, 1, 7].into(), 1000, 80, 6);
        assert_ne!(fold.masked_query(&h1), fold.masked_query(&h3));
    }

    #[test]
    fn hash_signature_excludes_proper_ranges() {
        let ranged = Rule::builder(Priority(0))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .src_port(PortRange::new(1024, 2047).unwrap())
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(17))
            .build();
        let sig = MaskSummary::hash_signature(&ranged);
        assert_eq!(sig.mask(Dim::SipHi), 0xff00);
        assert_eq!(sig.mask(Dim::SrcPort), 0x0000, "a range has no bitmask");
        assert_eq!(sig.mask(Dim::DstPort), 0xffff, "exact port is equality");
        assert_eq!(sig.mask(Dim::Proto), 0x00ff);
        // of_rule stays conservative where hash_signature must be exact.
        assert_eq!(MaskSummary::of_rule(&ranged).mask(Dim::SrcPort), 0xffff);
    }

    #[test]
    fn masked_rule_equals_masked_query_of_matching_headers() {
        let rules = [
            rule(),
            Rule::any(Priority(1)),
            Rule::builder(Priority(2))
                .src_ip(Prefix::parse("10.1.128.0/20").unwrap())
                .src_port(PortRange::new(1000, 2000).unwrap())
                .proto(ProtoSpec::Exact(6))
                .build(),
        ];
        let headers = [
            Header::new([10, 5, 5, 5].into(), [192, 168, 1, 7].into(), 1000, 80, 6),
            Header::new([10, 1, 128, 9].into(), [1, 2, 3, 4].into(), 1500, 443, 6),
        ];
        for r in &rules {
            let sig = MaskSummary::hash_signature(r);
            for h in &headers {
                if r.matches(h) {
                    assert_eq!(
                        sig.masked_query(h),
                        sig.masked_rule(r),
                        "matching header must hash-key to the rule's slot"
                    );
                }
            }
        }
    }

    #[test]
    fn display_is_seven_slashed_hex_fields() {
        let s = MaskSummary::of_rule(&rule()).to_string();
        assert_eq!(s.split('/').count(), 7);
        assert!(s.contains("ff00"));
    }
}
