//! Mapping optimized rule ids back to the original rule set.

use crate::RuleId;

/// The id translation an optimizer emits alongside a rewritten
/// [`crate::RuleSet`]: entry `i` is the original-set id that optimized
/// rule `RuleId(i)` descends from.
///
/// The map is total over the optimized set (every surviving rule has
/// provenance) and injective for id-preserving pipelines (no two
/// optimized rules share an ancestor); range-merging pipelines may fold
/// several original rules into one survivor, in which case the survivor
/// carries the best-ranked ancestor.
///
/// ```
/// use spc_types::{ProvenanceMap, RuleId};
///
/// // Rules 1 and 3 of a 4-rule set were eliminated.
/// let map = ProvenanceMap::from_vec(vec![RuleId(0), RuleId(2)]);
/// assert_eq!(map.original(RuleId(1)), Some(RuleId(2)));
/// assert_eq!(map.original(RuleId(2)), None); // not in the optimized set
/// assert_eq!(map.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProvenanceMap {
    /// `to_original[optimized_id] = original_id`.
    to_original: Vec<RuleId>,
}

impl ProvenanceMap {
    /// The identity map over `n` rules (a no-op optimization).
    pub fn identity(n: usize) -> Self {
        ProvenanceMap {
            to_original: (0..n as u32).map(RuleId).collect(),
        }
    }

    /// A map from the explicit per-optimized-id ancestor list.
    pub fn from_vec(to_original: Vec<RuleId>) -> Self {
        ProvenanceMap { to_original }
    }

    /// The original-set id behind an optimized id, or `None` when the id
    /// is outside the optimized set.
    pub fn original(&self, optimized: RuleId) -> Option<RuleId> {
        self.to_original.get(optimized.0 as usize).copied()
    }

    /// Number of optimized rules mapped.
    pub fn len(&self) -> usize {
        self.to_original.len()
    }

    /// Whether the optimized set is empty.
    pub fn is_empty(&self) -> bool {
        self.to_original.is_empty()
    }

    /// Whether every optimized id maps to itself (nothing was removed or
    /// reordered).
    pub fn is_identity(&self) -> bool {
        self.to_original
            .iter()
            .enumerate()
            .all(|(i, id)| id.0 as usize == i)
    }

    /// Iterates `(optimized_id, original_id)` pairs in optimized-id order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, RuleId)> + '_ {
        self.to_original
            .iter()
            .enumerate()
            .map(|(i, &orig)| (RuleId(i as u32), orig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_every_id_to_itself() {
        let map = ProvenanceMap::identity(3);
        assert!(map.is_identity());
        assert_eq!(map.len(), 3);
        for i in 0..3 {
            assert_eq!(map.original(RuleId(i)), Some(RuleId(i)));
        }
        assert_eq!(map.original(RuleId(3)), None);
    }

    #[test]
    fn gaps_are_not_identity() {
        let map = ProvenanceMap::from_vec(vec![RuleId(0), RuleId(2)]);
        assert!(!map.is_identity());
        let pairs: Vec<_> = map.iter().collect();
        assert_eq!(pairs, vec![(RuleId(0), RuleId(0)), (RuleId(1), RuleId(2))]);
    }

    #[test]
    fn empty_map() {
        let map = ProvenanceMap::default();
        assert!(map.is_empty());
        assert!(map.is_identity());
        assert_eq!(map.original(RuleId(0)), None);
    }
}
