//! OpenFlow-style flow actions attached to classification rules.

use std::fmt;

/// The action executed for packets whose highest-priority matching rule is
/// this rule (paper §I: forwarding, modification, redirection to a group
/// table, etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Action {
    /// Drop the packet. This is the default action for security filter sets.
    #[default]
    Drop,
    /// Forward out of the given switch port.
    Forward(u16),
    /// Send to the SDN controller (packet-in).
    ToController,
    /// Redirect to an OpenFlow group table entry.
    Group(u32),
    /// Rewrite the destination and forward (simplified set-field + output).
    Modify {
        /// Output port after modification.
        port: u16,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Drop => write!(f, "drop"),
            Action::Forward(p) => write!(f, "fwd:{p}"),
            Action::ToController => write!(f, "controller"),
            Action::Group(g) => write!(f, "group:{g}"),
            Action::Modify { port } => write!(f, "modify->fwd:{port}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert_eq!(Action::Drop.to_string(), "drop");
        assert_eq!(Action::Forward(3).to_string(), "fwd:3");
        assert_eq!(Action::ToController.to_string(), "controller");
        assert_eq!(Action::Group(9).to_string(), "group:9");
        assert_eq!(Action::Modify { port: 2 }.to_string(), "modify->fwd:2");
    }

    #[test]
    fn default_is_drop() {
        assert_eq!(Action::default(), Action::Drop);
    }
}
