//! Read/write the ClassBench filter text format.
//!
//! Each rule is one line:
//!
//! ```text
//! @<sip>/<len>  <dip>/<len>  <lo> : <hi>  <lo> : <hi>  <proto>/<mask>
//! ```
//!
//! e.g. `@192.168.0.0/16 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF`.
//! Priorities are assigned by position (first line = highest priority), the
//! ACL convention used by the paper's filter sets [12].

use crate::{Action, PortRange, Prefix, Priority, ProtoSpec, Rule, RuleSet, TypeError};
use std::fmt::Write as _;

/// Parses a ClassBench-format filter text into a [`RuleSet`].
///
/// Blank lines and lines starting with `#` are ignored. Priorities are
/// assigned by position.
///
/// # Errors
///
/// Returns [`TypeError::Parse`] (with a 1-based line number) on any
/// malformed line.
///
/// ```
/// use spc_types::parse_ruleset;
/// # fn main() -> Result<(), spc_types::TypeError> {
/// let rs = parse_ruleset("@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF\n")?;
/// assert_eq!(rs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_ruleset(text: &str) -> Result<RuleSet, TypeError> {
    let mut rules = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        rules.push(parse_rule_line(line, line_no)?);
    }
    Ok(RuleSet::from_rules_reprioritized(rules))
}

fn parse_rule_line(line: &str, line_no: usize) -> Result<Rule, TypeError> {
    let err = |msg: &str| TypeError::Parse {
        line: line_no,
        msg: msg.to_string(),
    };
    let body = line
        .strip_prefix('@')
        .ok_or_else(|| err("rule line must start with '@'"))?;
    let tokens: Vec<&str> = body.split_whitespace().collect();
    // sip dip lo : hi lo : hi proto/mask  => 2 + 3 + 3 + 1 = 9 tokens
    if tokens.len() != 9 {
        return Err(err(&format!("expected 9 tokens, found {}", tokens.len())));
    }
    let with_line = |e: TypeError| match e {
        TypeError::Parse { msg, .. } => TypeError::Parse { line: line_no, msg },
        other => other,
    };
    let src_ip = Prefix::parse(tokens[0]).map_err(with_line)?;
    let dst_ip = Prefix::parse(tokens[1]).map_err(with_line)?;
    let src_port = parse_range(tokens[2], tokens[3], tokens[4], line_no)?;
    let dst_port = parse_range(tokens[5], tokens[6], tokens[7], line_no)?;
    let proto = parse_proto(tokens[8], line_no)?;
    Ok(Rule {
        priority: Priority(0), // overwritten by reprioritize
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
        action: Action::Drop,
    })
}

fn parse_range(lo: &str, colon: &str, hi: &str, line_no: usize) -> Result<PortRange, TypeError> {
    let err = |msg: &str| TypeError::Parse {
        line: line_no,
        msg: msg.to_string(),
    };
    if colon != ":" {
        return Err(err("expected ':' between range bounds"));
    }
    let lo: u16 = lo.parse().map_err(|_| err("invalid range lower bound"))?;
    let hi: u16 = hi.parse().map_err(|_| err("invalid range upper bound"))?;
    PortRange::new(lo, hi)
}

fn parse_proto(tok: &str, line_no: usize) -> Result<ProtoSpec, TypeError> {
    let err = |msg: &str| TypeError::Parse {
        line: line_no,
        msg: msg.to_string(),
    };
    let (val, mask) = tok
        .split_once('/')
        .ok_or_else(|| err("protocol must be value/mask"))?;
    let parse_hex = |s: &str| -> Result<u8, TypeError> {
        let s = s.trim();
        let digits = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        u8::from_str_radix(digits, 16).map_err(|_| err("invalid protocol byte"))
    };
    let v = parse_hex(val)?;
    let m = parse_hex(mask)?;
    match m {
        0x00 => Ok(ProtoSpec::Any),
        0xff => Ok(ProtoSpec::Exact(v)),
        _ => Err(err("protocol mask must be 0x00 or 0xFF")),
    }
}

/// Serialises a rule set in ClassBench format (priorities are implied by
/// line order, so rules are emitted sorted by priority).
///
/// ```
/// use spc_types::{parse_ruleset, write_ruleset};
/// # fn main() -> Result<(), spc_types::TypeError> {
/// let text = "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF\n";
/// let rs = parse_ruleset(text)?;
/// let out = write_ruleset(&rs);
/// assert_eq!(parse_ruleset(&out)?, rs);
/// # Ok(())
/// # }
/// ```
pub fn write_ruleset(rs: &RuleSet) -> String {
    let mut rules: Vec<&Rule> = rs.rules().iter().collect();
    rules.sort_by_key(|r| r.priority);
    let mut out = String::new();
    for r in rules {
        let _ = writeln!(
            out,
            "@{}\t{}\t{}\t{}\t{}",
            r.src_ip, r.dst_ip, r.src_port, r.dst_port, r.proto
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
@192.168.0.0/16 10.0.0.0/8 0 : 65535 80 : 80 0x06/0xFF

@0.0.0.0/0 0.0.0.0/0 1024 : 2047 0 : 65535 0x00/0x00
";

    #[test]
    fn parse_sample() {
        let rs = parse_ruleset(SAMPLE).unwrap();
        assert_eq!(rs.len(), 2);
        let r0 = &rs.rules()[0];
        assert_eq!(r0.src_ip, Prefix::parse("192.168.0.0/16").unwrap());
        assert_eq!(r0.dst_port, PortRange::exact(80));
        assert_eq!(r0.proto, ProtoSpec::Exact(6));
        assert_eq!(r0.priority, Priority(0));
        let r1 = &rs.rules()[1];
        assert_eq!(r1.proto, ProtoSpec::Any);
        assert_eq!(r1.src_port, PortRange::new(1024, 2047).unwrap());
        assert_eq!(r1.priority, Priority(1));
    }

    #[test]
    fn roundtrip() {
        let rs = parse_ruleset(SAMPLE).unwrap();
        let text = write_ruleset(&rs);
        assert_eq!(parse_ruleset(&text).unwrap(), rs);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF\n@oops\n";
        match parse_ruleset(bad) {
            Err(TypeError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_tokens() {
        for bad in [
            "10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0xFF", // missing @
            "@10.0.0.0/8 0.0.0.0/0 0 ; 65535 80 : 80 0x06/0xFF", // bad colon
            "@10.0.0.0/8 0.0.0.0/0 99999 : 65535 80 : 80 0x06/0xFF", // bad port
            "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06/0x0F", // bad mask
            "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80 0x06",     // no mask
            "@10.0.0.0/8 0.0.0.0/0 0 : 65535 80 : 80",          // short
        ] {
            assert!(parse_ruleset(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn range_error_from_port_bounds() {
        let bad = "@0.0.0.0/0 0.0.0.0/0 10 : 5 0 : 65535 0x00/0x00";
        assert!(matches!(
            parse_ruleset(bad),
            Err(TypeError::EmptyRange { lo: 10, hi: 5 })
        ));
    }
}
