//! Packet headers (the classification 5-tuple).

use crate::Ipv4;
use std::fmt;

/// The layer 3–4 header fields used for classification (paper §I): source
/// and destination IPv4 addresses, source and destination transport ports,
/// and the IP protocol number.
///
/// ```
/// use spc_types::Header;
/// let h = Header::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 1234, 80, 6);
/// assert_eq!(h.dst_port, 80);
/// assert_eq!(h.sip_hi(), 0x0a00);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Header {
    /// Source IPv4 address.
    pub src_ip: Ipv4,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, ...).
    pub proto: u8,
}

impl Header {
    /// Creates a header from the five tuple fields.
    pub fn new(src_ip: Ipv4, dst_ip: Ipv4, src_port: u16, dst_port: u16, proto: u8) -> Self {
        Header {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        }
    }

    /// High 16 bits of the source address (segment dimension `SipHi`).
    pub fn sip_hi(&self) -> u16 {
        self.src_ip.hi16()
    }

    /// Low 16 bits of the source address (segment dimension `SipLo`).
    pub fn sip_lo(&self) -> u16 {
        self.src_ip.lo16()
    }

    /// High 16 bits of the destination address (segment dimension `DipHi`).
    pub fn dip_hi(&self) -> u16 {
        self.dst_ip.hi16()
    }

    /// Low 16 bits of the destination address (segment dimension `DipLo`).
    pub fn dip_lo(&self) -> u16 {
        self.dst_ip.lo16()
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments() {
        let h = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 9, 10, 11);
        assert_eq!(h.sip_hi(), 0x0102);
        assert_eq!(h.sip_lo(), 0x0304);
        assert_eq!(h.dip_hi(), 0x0506);
        assert_eq!(h.dip_lo(), 0x0708);
    }

    #[test]
    fn display() {
        let h = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 9, 10, 11);
        assert_eq!(h.to_string(), "1.2.3.4:9 -> 5.6.7.8:10 proto 11");
    }
}
