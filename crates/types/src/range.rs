//! Inclusive port ranges with exact/range match classification.

use crate::TypeError;
use std::fmt;

/// An inclusive range of 16-bit port values `[lo, hi]`.
///
/// Invariant: `lo <= hi` (enforced by [`PortRange::new`]).
///
/// The paper distinguishes **exact matching** (`lo == hi`) from **range
/// matching**; port label priority orders exact matches first, then tighter
/// ranges (Table IV).
///
/// ```
/// use spc_types::PortRange;
/// # fn main() -> Result<(), spc_types::TypeError> {
/// let r = PortRange::new(1024, 2047)?;
/// assert!(r.contains(1500));
/// assert!(!r.is_exact());
/// assert_eq!(PortRange::exact(80).width(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortRange {
    lo: u16,
    hi: u16,
}

impl PortRange {
    /// The full range `[0, 65535]` (wildcard).
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// Creates a range.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::EmptyRange`] when `lo > hi`.
    pub fn new(lo: u16, hi: u16) -> Result<Self, TypeError> {
        if lo > hi {
            return Err(TypeError::EmptyRange { lo, hi });
        }
        Ok(PortRange { lo, hi })
    }

    /// A single-port exact range.
    pub fn exact(port: u16) -> Self {
        PortRange { lo: port, hi: port }
    }

    /// Lower bound (inclusive).
    pub fn lo(self) -> u16 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(self) -> u16 {
        self.hi
    }

    /// Whether this range matches exactly one port.
    pub fn is_exact(self) -> bool {
        self.lo == self.hi
    }

    /// Whether this is the full wildcard range.
    pub fn is_any(self) -> bool {
        self == PortRange::ANY
    }

    /// Number of ports covered (1 ..= 65536).
    pub fn width(self) -> u32 {
        u32::from(self.hi) - u32::from(self.lo) + 1
    }

    /// Whether `port` falls inside the range.
    pub fn contains(self, port: u16) -> bool {
        self.lo <= port && port <= self.hi
    }

    /// Whether `self` fully covers `other`.
    pub fn covers(self, other: PortRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two ranges share at least one port.
    pub fn overlaps(self, other: PortRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

impl Default for PortRange {
    fn default() -> Self {
        PortRange::ANY
    }
}

impl fmt::Display for PortRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(PortRange::new(10, 5).is_err());
        assert!(PortRange::new(5, 5).is_ok());
        assert!(PortRange::new(0, 65535).is_ok());
    }

    #[test]
    fn exact_and_width() {
        assert!(PortRange::exact(80).is_exact());
        assert_eq!(PortRange::exact(80).width(), 1);
        assert_eq!(PortRange::ANY.width(), 65536);
        assert!(PortRange::ANY.is_any());
        assert!(!PortRange::exact(0).is_any());
    }

    #[test]
    fn contains_bounds_inclusive() {
        let r = PortRange::new(100, 200).unwrap();
        assert!(r.contains(100));
        assert!(r.contains(200));
        assert!(!r.contains(99));
        assert!(!r.contains(201));
    }

    #[test]
    fn covers_and_overlaps() {
        let a = PortRange::new(0, 1000).unwrap();
        let b = PortRange::new(10, 20).unwrap();
        let c = PortRange::new(999, 2000).unwrap();
        let d = PortRange::new(1001, 1002).unwrap();
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert!(a.overlaps(c));
        assert!(c.overlaps(a));
        assert!(!a.overlaps(d));
        assert!(a.covers(a));
    }

    #[test]
    fn display_matches_classbench_style() {
        assert_eq!(PortRange::new(0, 65535).unwrap().to_string(), "0 : 65535");
        assert_eq!(PortRange::exact(7812).to_string(), "7812 : 7812");
    }
}
