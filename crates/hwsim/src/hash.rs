//! The hardware hash unit.
//!
//! The architecture merges the highest-priority label of each of the seven
//! dimensions into one 68-bit segment (4 × 13-bit IP-segment labels +
//! 2 × 7-bit port labels + 1 × 2-bit protocol label) and hashes it to obtain
//! the Rule Filter address (§IV.C.1). A rule insert uses the same unit, so
//! update and lookup agree on addresses and the insert costs one extra hash
//! cycle (§V.A).

/// A stateless hash unit folding wide keys to `addr_bits`-bit addresses.
///
/// The implementation is a 64-bit FNV-1a over the key bytes followed by an
/// xor-fold — cheap enough to be combinational in hardware, and completely
/// deterministic so the software controller can precompute the same
/// addresses it programs into the device.
///
/// ```
/// use spc_hwsim::HashUnit;
/// let h = HashUnit::new(13);
/// let a = h.fold(0x1234_5678_9abc_def0_12u128);
/// assert!(a < (1 << 13));
/// assert_eq!(a, h.fold(0x1234_5678_9abc_def0_12u128)); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashUnit {
    addr_bits: u32,
}

impl HashUnit {
    /// Creates a hash unit producing addresses of `addr_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= addr_bits <= 32`.
    pub fn new(addr_bits: u32) -> Self {
        assert!(
            (1..=32).contains(&addr_bits),
            "addr_bits must be in 1..=32, got {addr_bits}"
        );
        HashUnit { addr_bits }
    }

    /// Address width in bits.
    pub fn addr_bits(self) -> u32 {
        self.addr_bits
    }

    /// Number of addressable slots (`2^addr_bits`).
    pub fn slots(self) -> usize {
        1usize << self.addr_bits
    }

    /// Folds a key (up to 128 bits; the architecture uses 68) to an address.
    pub fn fold(self, key: u128) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in key.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Xor-fold 64 -> addr_bits.
        let folded = h ^ (h >> 32);
        let folded = folded ^ (folded >> self.addr_bits.min(31));
        (folded as usize) & (self.slots() - 1)
    }

    /// The probe sequence for open addressing: `fold(key) + i` mod slots.
    ///
    /// Linear probing keeps the hardware trivial (an incrementer) and makes
    /// probe counts easy to charge to the cycle model.
    pub fn probe(self, key: u128, i: usize) -> usize {
        (self.fold(key) + i) & (self.slots() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_in_range() {
        let h = HashUnit::new(13);
        for k in 0..1000u128 {
            assert!(h.fold(k * 0x9e37_79b9) < h.slots());
        }
    }

    #[test]
    fn deterministic() {
        let h = HashUnit::new(16);
        assert_eq!(h.fold(42), h.fold(42));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Not a statistical test, just a sanity check that sequential keys
        // don't all collide.
        let h = HashUnit::new(10);
        let mut seen = std::collections::HashSet::new();
        for k in 0..512u128 {
            seen.insert(h.fold(k));
        }
        assert!(seen.len() > 300, "only {} distinct addresses", seen.len());
    }

    #[test]
    fn probe_wraps() {
        let h = HashUnit::new(4);
        let base = h.fold(7);
        assert_eq!(h.probe(7, 0), base);
        assert_eq!(h.probe(7, 16), base);
        assert_eq!(h.probe(7, 1), (base + 1) % 16);
    }

    #[test]
    #[should_panic(expected = "addr_bits")]
    fn rejects_zero_bits() {
        let _ = HashUnit::new(0);
    }

    #[test]
    fn full_68_bit_keys_differ() {
        let h = HashUnit::new(13);
        // Keys differing only in the top (68th) bit must be distinguishable
        // inputs (they may still collide, but typically won't).
        let a = 0u128;
        let b = 1u128 << 67;
        // Just ensure both are valid and the hash consumes high bits.
        let _ = h.fold(a);
        let _ = h.fold(b);
        assert_ne!(h.fold(0xdead_beef), h.fold(0xdead_beef | (1 << 67)));
    }
}
