//! Hardware substrate model for the SOCC 2014 classifier reproduction.
//!
//! The paper prototypes its architecture on an Altera Stratix V FPGA and
//! reports memory bits, memory accesses per packet, clock frequency and the
//! resulting line-rate throughput. This crate models exactly those
//! quantities so the rest of the workspace can reproduce Tables V–VII
//! without hardware:
//!
//! * [`MemoryBlock`] — a block RAM with fixed geometry (words × word width)
//!   that stores the actual simulator data and counts every read/write;
//! * [`ClockDomain`] — converts cycles/packet into lookups/s and Gbps the
//!   same way the paper does (§V.C);
//! * [`HashUnit`] — the hardware hash that folds the merged 68-bit label key
//!   into a Rule Filter address (§IV.A, §IV.C.1);
//! * [`SharedRegion`] — the Fig 5 memory-sharing multiplexer between the MBT
//!   level-2 block and the BST node memory;
//! * [`ResourceReport`] — the Table V synthesis summary.

mod clock;
mod hash;
mod mem;
mod resources;
mod share;

pub use clock::{ClockDomain, MIN_PACKET_BYTES, STRATIX_V_FMAX_MHZ};
pub use hash::HashUnit;
pub use mem::{AccessCounts, MemoryBlock, MemoryError};
pub use resources::{
    ResourceReport, STRATIX_V_MEM_BITS, STRATIX_V_TOTAL_ALMS, STRATIX_V_TOTAL_PINS,
};
pub use share::{ShareSelect, SharedRegion};
