//! Clock and line-rate throughput model (paper §V.C).
//!
//! The paper's headline numbers derive from one formula: a design clocked at
//! `f` MHz that needs `c` cycles per packet classifies `f/c` million
//! packets/s; at the 40-byte minimum packet size that is `f/c × 320` Mbit/s.
//! MBT mode is fully pipelined (initiation interval 1 ⇒ `c = 1`), giving
//! 133.51 M lookups/s ≈ 42.7 Gbps; BST mode needs ~16 memory accesses per
//! packet ⇒ 2.67 Gbps (Table VII).

/// Maximum frequency reported for the Stratix V prototype (Table V), MHz.
pub const STRATIX_V_FMAX_MHZ: f64 = 133.51;

/// Minimum packet size assumed by the paper's throughput numbers, bytes.
pub const MIN_PACKET_BYTES: u32 = 40;

/// A synchronous clock domain.
///
/// ```
/// use spc_hwsim::{ClockDomain, STRATIX_V_FMAX_MHZ, MIN_PACKET_BYTES};
/// let clk = ClockDomain::new(STRATIX_V_FMAX_MHZ);
/// // Pipelined MBT: 1 cycle/packet at 40 B -> the paper's 42.73 Gbps.
/// let gbps = clk.throughput_gbps(1.0, MIN_PACKET_BYTES);
/// assert!((gbps - 42.72).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_mhz: f64,
}

impl ClockDomain {
    /// Creates a clock domain at the given frequency (MHz).
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not strictly positive and finite.
    pub fn new(freq_mhz: f64) -> Self {
        assert!(
            freq_mhz.is_finite() && freq_mhz > 0.0,
            "clock frequency must be positive, got {freq_mhz}"
        );
        ClockDomain { freq_mhz }
    }

    /// The Stratix V prototype clock (133.51 MHz).
    pub fn stratix_v() -> Self {
        ClockDomain::new(STRATIX_V_FMAX_MHZ)
    }

    /// Frequency in MHz.
    pub fn freq_mhz(self) -> f64 {
        self.freq_mhz
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(self) -> f64 {
        1_000.0 / self.freq_mhz
    }

    /// Packet lookups per second given `cycles_per_packet` (the initiation
    /// interval for pipelined engines, the full latency otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_packet <= 0`.
    pub fn lookups_per_sec(self, cycles_per_packet: f64) -> f64 {
        assert!(
            cycles_per_packet > 0.0,
            "cycles per packet must be positive"
        );
        self.freq_mhz * 1e6 / cycles_per_packet
    }

    /// Line-rate throughput in Gbps for back-to-back packets of the given
    /// size.
    pub fn throughput_gbps(self, cycles_per_packet: f64, packet_bytes: u32) -> f64 {
        self.lookups_per_sec(cycles_per_packet) * f64::from(packet_bytes) * 8.0 / 1e9
    }

    /// Latency in nanoseconds of a `cycles`-cycle operation.
    pub fn latency_ns(self, cycles: u32) -> f64 {
        f64::from(cycles) * self.cycle_ns()
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::stratix_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mbt_throughput() {
        let clk = ClockDomain::stratix_v();
        let gbps = clk.throughput_gbps(1.0, MIN_PACKET_BYTES);
        // Paper Table VII: 42.73 Gbps.
        assert!((gbps - 42.73).abs() < 0.02, "got {gbps}");
    }

    #[test]
    fn paper_bst_throughput() {
        let clk = ClockDomain::stratix_v();
        let gbps = clk.throughput_gbps(16.0, MIN_PACKET_BYTES);
        // Paper Table VII: 2.67 Gbps.
        assert!((gbps - 2.67).abs() < 0.01, "got {gbps}");
    }

    #[test]
    fn conclusion_100g_claim() {
        // Paper conclusion: 133 M lookups/s at 100-byte packets > 100 Gbps.
        let clk = ClockDomain::stratix_v();
        assert!(clk.throughput_gbps(1.0, 100) > 100.0);
        assert!((clk.lookups_per_sec(1.0) / 1e6 - 133.51).abs() < 1e-9);
    }

    #[test]
    fn cycle_time() {
        let clk = ClockDomain::new(100.0);
        assert!((clk.cycle_ns() - 10.0).abs() < 1e-12);
        assert!((clk.latency_ns(6) - 60.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_freq() {
        let _ = ClockDomain::new(0.0);
    }

    #[test]
    #[should_panic(expected = "cycles per packet")]
    fn rejects_zero_cycles() {
        let _ = ClockDomain::stratix_v().lookups_per_sec(0.0);
    }
}
