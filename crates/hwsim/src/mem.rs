//! Block-RAM model: fixed geometry, real storage, access counting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Error from memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// Address beyond the block's word capacity.
    OutOfBounds {
        /// Block name.
        block: String,
        /// Offending address.
        addr: usize,
        /// Word capacity.
        words: usize,
    },
    /// The block is full (allocation-style writes only).
    Full {
        /// Block name.
        block: String,
        /// Word capacity.
        words: usize,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfBounds { block, addr, words } => {
                write!(
                    f,
                    "address {addr} out of bounds for block '{block}' ({words} words)"
                )
            }
            MemoryError::Full { block, words } => {
                write!(f, "memory block '{block}' is full ({words} words)")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Read/write counters of a block (or an aggregate over blocks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// Number of word reads.
    pub reads: u64,
    /// Number of word writes.
    pub writes: u64,
}

impl AccessCounts {
    /// Total accesses (reads + writes).
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Add for AccessCounts {
    type Output = AccessCounts;
    fn add(self, rhs: AccessCounts) -> AccessCounts {
        AccessCounts {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::iter::Sum for AccessCounts {
    fn sum<I: Iterator<Item = AccessCounts>>(iter: I) -> Self {
        iter.fold(AccessCounts::default(), |a, b| a + b)
    }
}

/// A block RAM of `words` words, each `width_bits` wide, storing values of
/// type `T` (one per word) and counting every access.
///
/// The element type `T` is the *semantic* content of a word (a trie node, a
/// label list pointer, ...); `width_bits` is what the word costs in hardware
/// and is used for the Table V/VI memory inventories. Keeping the two
/// together means the simulator cannot silently use more state than the
/// hardware it models provisions.
///
/// Reads use interior mutability (atomic counters) so lookup paths can stay
/// `&self`, matching read-only data-plane access.
///
/// ```
/// use spc_hwsim::MemoryBlock;
/// let mut m: MemoryBlock<u32> = MemoryBlock::new("l1", 32, 24);
/// let addr = m.alloc(7).unwrap();
/// assert_eq!(*m.read(addr).unwrap(), 7);
/// assert_eq!(m.accesses().reads, 1);
/// assert_eq!(m.capacity_bits(), 32 * 24);
/// ```
#[derive(Debug)]
pub struct MemoryBlock<T> {
    name: String,
    words: usize,
    width_bits: u32,
    data: Vec<T>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl<T> MemoryBlock<T> {
    /// Creates an empty block with the given geometry.
    pub fn new(name: impl Into<String>, words: usize, width_bits: u32) -> Self {
        MemoryBlock {
            name: name.into(),
            words,
            width_bits,
            data: Vec::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Block name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Word capacity.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Provisioned capacity in bits (`words × width`).
    pub fn capacity_bits(&self) -> u64 {
        self.words as u64 * u64::from(self.width_bits)
    }

    /// Bits actually occupied (`used words × width`).
    pub fn used_bits(&self) -> u64 {
        self.data.len() as u64 * u64::from(self.width_bits)
    }

    /// Number of words currently allocated.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no words are allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining free words.
    pub fn free_words(&self) -> usize {
        self.words - self.data.len()
    }

    /// Appends a word, returning its address.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Full`] when the block is at capacity.
    pub fn alloc(&mut self, value: T) -> Result<usize, MemoryError> {
        if self.data.len() >= self.words {
            return Err(MemoryError::Full {
                block: self.name.clone(),
                words: self.words,
            });
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.data.push(value);
        Ok(self.data.len() - 1)
    }

    /// Reads the word at `addr`, charging one read access.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfBounds`] for unallocated addresses.
    pub fn read(&self, addr: usize) -> Result<&T, MemoryError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.data.get(addr).ok_or_else(|| MemoryError::OutOfBounds {
            block: self.name.clone(),
            addr,
            words: self.words,
        })
    }

    /// Overwrites the word at `addr`, charging one write access.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfBounds`] for unallocated addresses.
    pub fn write(&mut self, addr: usize, value: T) -> Result<(), MemoryError> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        match self.data.get_mut(addr) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(MemoryError::OutOfBounds {
                block: self.name.clone(),
                addr,
                words: self.words,
            }),
        }
    }

    /// Mutable access to a word *without* charging an access — for software
    /// (controller-side) restructuring that happens off the data path.
    pub fn get_mut_untracked(&mut self, addr: usize) -> Option<&mut T> {
        self.data.get_mut(addr)
    }

    /// Read without charging an access — controller-side inspection.
    pub fn get_untracked(&self, addr: usize) -> Option<&T> {
        self.data.get(addr)
    }

    /// Clears content (e.g. software rebuild), keeping geometry and counters.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Current access counters.
    pub fn accesses(&self) -> AccessCounts {
        AccessCounts {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets the access counters (e.g. between benchmark phases).
    pub fn reset_accesses(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_capacity() {
        let m: MemoryBlock<u8> = MemoryBlock::new("b", 1024, 36);
        assert_eq!(m.capacity_bits(), 36864);
        assert_eq!(m.words(), 1024);
        assert_eq!(m.width_bits(), 36);
        assert!(m.is_empty());
        assert_eq!(m.free_words(), 1024);
    }

    #[test]
    fn alloc_read_write_count() {
        let mut m: MemoryBlock<u32> = MemoryBlock::new("b", 4, 8);
        let a0 = m.alloc(10).unwrap();
        let a1 = m.alloc(11).unwrap();
        assert_eq!((a0, a1), (0, 1));
        assert_eq!(*m.read(a1).unwrap(), 11);
        m.write(a0, 20).unwrap();
        assert_eq!(*m.read(a0).unwrap(), 20);
        let c = m.accesses();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 3); // 2 allocs + 1 write
        assert_eq!(c.total(), 5);
        assert_eq!(m.used_bits(), 16);
    }

    #[test]
    fn full_and_oob_errors() {
        let mut m: MemoryBlock<u32> = MemoryBlock::new("tiny", 1, 8);
        m.alloc(1).unwrap();
        assert!(matches!(m.alloc(2), Err(MemoryError::Full { .. })));
        assert!(matches!(
            m.read(5),
            Err(MemoryError::OutOfBounds { addr: 5, .. })
        ));
        assert!(matches!(
            m.write(5, 0),
            Err(MemoryError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn untracked_access_does_not_count() {
        let mut m: MemoryBlock<u32> = MemoryBlock::new("b", 4, 8);
        m.alloc(1).unwrap();
        m.reset_accesses();
        assert_eq!(*m.get_untracked(0).unwrap(), 1);
        *m.get_mut_untracked(0).unwrap() = 9;
        assert_eq!(m.accesses(), AccessCounts::default());
        assert_eq!(*m.read(0).unwrap(), 9);
    }

    #[test]
    fn clear_keeps_geometry() {
        let mut m: MemoryBlock<u32> = MemoryBlock::new("b", 4, 8);
        m.alloc(1).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.words(), 4);
    }

    #[test]
    fn counts_sum_and_add() {
        let a = AccessCounts {
            reads: 1,
            writes: 2,
        };
        let b = AccessCounts {
            reads: 3,
            writes: 4,
        };
        assert_eq!((a + b).total(), 10);
        let s: AccessCounts = [a, b].into_iter().sum();
        assert_eq!(
            s,
            AccessCounts {
                reads: 4,
                writes: 6
            }
        );
    }

    #[test]
    fn error_display() {
        let e = MemoryError::Full {
            block: "x".into(),
            words: 4,
        };
        assert!(e.to_string().contains("full"));
    }
}
