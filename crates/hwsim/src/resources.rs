//! FPGA resource accounting (paper Table V).
//!
//! Block-memory bits are computed from the architecture's real
//! [`crate::MemoryBlock`] inventory. Logic utilisation, register and pin
//! counts are synthesis artefacts that cannot be derived from a functional
//! simulator; [`ResourceReport::stratix_v_prototype`] carries the paper's
//! published constants for those fields so Table V can be rendered with an
//! honest provenance split (measured memory vs quoted synthesis numbers).

use std::fmt;

/// Total block-memory bits of the Stratix V 5SGXMB6R3F43C4 device.
pub const STRATIX_V_MEM_BITS: u64 = 54_476_800;

/// Total adaptive logic modules of the device (Table V denominator).
pub const STRATIX_V_TOTAL_ALMS: u64 = 225_400;

/// Total I/O pins of the device.
pub const STRATIX_V_TOTAL_PINS: u64 = 908;

/// A Table V-style synthesis summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// Block-memory bits used by the architecture (measured from the model).
    pub mem_bits_used: u64,
    /// Device block-memory capacity.
    pub mem_bits_total: u64,
    /// Logic (ALMs) used — quoted from the paper's synthesis, not modeled.
    pub logic_used: u64,
    /// Device logic capacity.
    pub logic_total: u64,
    /// Registers — quoted from the paper's synthesis.
    pub registers: u64,
    /// Maximum frequency, MHz.
    pub fmax_mhz: f64,
    /// Pins used — quoted from the paper's synthesis.
    pub pins_used: u64,
    /// Device pin count.
    pub pins_total: u64,
}

impl ResourceReport {
    /// Builds a report for the given measured memory usage, filling the
    /// synthesis-only fields with the paper's published prototype values
    /// (79,835 ALMs, 129,273 registers, 133.51 MHz, 500 pins).
    pub fn stratix_v_prototype(mem_bits_used: u64) -> Self {
        ResourceReport {
            mem_bits_used,
            mem_bits_total: STRATIX_V_MEM_BITS,
            logic_used: 79_835,
            logic_total: STRATIX_V_TOTAL_ALMS,
            registers: 129_273,
            fmax_mhz: crate::STRATIX_V_FMAX_MHZ,
            pins_used: 500,
            pins_total: STRATIX_V_TOTAL_PINS,
        }
    }

    /// Fraction of device block memory used, in percent.
    pub fn mem_percent(&self) -> f64 {
        100.0 * self.mem_bits_used as f64 / self.mem_bits_total as f64
    }

    /// Whether the design fits the device's block memory.
    pub fn fits(&self) -> bool {
        self.mem_bits_used <= self.mem_bits_total
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Logical Utilization      {} / {}",
            self.logic_used, self.logic_total
        )?;
        writeln!(
            f,
            "Total block memory bits  {} / {}  ({:.1}%)",
            self.mem_bits_used,
            self.mem_bits_total,
            self.mem_percent()
        )?;
        writeln!(f, "Total registers          {}", self.registers)?;
        writeln!(f, "Maximum Frequency        {:.2} MHz", self.fmax_mhz)?;
        write!(
            f,
            "Total Number Pins        {} / {}",
            self.pins_used, self.pins_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_is_4_percent() {
        // Paper §V.C: "consumes 4% of total memory".
        let r = ResourceReport::stratix_v_prototype(2_097_184);
        assert!(
            (r.mem_percent() - 3.85).abs() < 0.1,
            "got {}",
            r.mem_percent()
        );
        assert!(r.fits());
    }

    #[test]
    fn display_contains_table_v_rows() {
        let r = ResourceReport::stratix_v_prototype(2_097_184);
        let s = r.to_string();
        assert!(s.contains("79835 / 225400"));
        assert!(s.contains("2097184 / 54476800"));
        assert!(s.contains("129273"));
        assert!(s.contains("133.51 MHz"));
        assert!(s.contains("500 / 908"));
    }

    #[test]
    fn overflow_detected() {
        let r = ResourceReport::stratix_v_prototype(STRATIX_V_MEM_BITS + 1);
        assert!(!r.fits());
        assert!(r.mem_percent() > 100.0);
    }
}
