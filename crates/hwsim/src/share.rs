//! Memory sharing between the two IP lookup algorithms (paper Fig 5).
//!
//! Both MBT and BST structures are synthesised, but the paper avoids paying
//! for both memories: the MBT **level-2** block has the same geometry
//! (dimension, input and output width) as the BST node memory, so one
//! physical block stores *Data 1* (MBT level-2 nodes) or *Data 2* (BST
//! nodes) depending on the `IPalg_s` select signal. The remaining MBT blocks
//! are then free in BST mode and store *Data 3* (additional rule
//! information) or more BST nodes — which is how the BST configuration
//! reaches 12K rules where MBT holds 8K (Table VI).

use std::fmt;

/// The `IPalg_s` configuration signal selecting the IP lookup algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShareSelect {
    /// Multi-bit trie: fast lookup (1 packet/cycle pipelined).
    #[default]
    Mbt,
    /// Binary search tree: memory-lean, higher rule capacity.
    Bst,
}

impl fmt::Display for ShareSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShareSelect::Mbt => f.write_str("MBT"),
            ShareSelect::Bst => f.write_str("BST"),
        }
    }
}

/// The Fig 5 shared-memory multiplexer for one segmented IP field.
///
/// Capacity arithmetic only — the actual node storage lives in the lookup
/// engines' [`crate::MemoryBlock`]s; this type answers "how many words of
/// which block does configuration X get", and validates the geometry
/// condition the paper states (level-2 and BST memories must share
/// dimension and word size).
///
/// ```
/// use spc_hwsim::{SharedRegion, ShareSelect};
/// let sh = SharedRegion::new(1024, 36, 2048, 36);
/// assert_eq!(sh.bst_node_words(), 1024 + 2048); // BST mode claims both
/// assert_eq!(sh.extra_words(ShareSelect::Mbt), 0);
/// assert_eq!(sh.extra_words(ShareSelect::Bst), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedRegion {
    level2_words: usize,
    level2_width: u32,
    rest_words: usize,
    rest_width: u32,
}

impl SharedRegion {
    /// Creates the shared region.
    ///
    /// `level2_*` describes the dual-use block (MBT level 2 / BST nodes);
    /// `rest_*` the remaining MBT memory reusable in BST mode.
    ///
    /// # Panics
    ///
    /// Panics if the level-2 width differs from the rest width, which would
    /// violate the paper's sharing condition (a BST node must fit either
    /// block unchanged).
    pub fn new(level2_words: usize, level2_width: u32, rest_words: usize, rest_width: u32) -> Self {
        assert_eq!(
            level2_width, rest_width,
            "shared blocks must have one word geometry (paper §IV.C.2)"
        );
        SharedRegion {
            level2_words,
            level2_width,
            rest_words,
            rest_width,
        }
    }

    /// Words available to MBT level 2 in MBT mode.
    pub fn mbt_level2_words(self) -> usize {
        self.level2_words
    }

    /// Total words available to BST nodes in BST mode (level-2 block plus
    /// the reclaimed rest).
    pub fn bst_node_words(self) -> usize {
        self.level2_words + self.rest_words
    }

    /// Words left over for extra rule storage under the given select.
    pub fn extra_words(self, select: ShareSelect) -> usize {
        match select {
            ShareSelect::Mbt => 0,
            ShareSelect::Bst => self.rest_words,
        }
    }

    /// Physical bits of the whole region (what synthesis must provision —
    /// the same in either mode, which is the point of sharing).
    pub fn physical_bits(self) -> u64 {
        (self.level2_words as u64 + self.rest_words as u64) * u64::from(self.level2_width)
    }

    /// Bits that would be needed *without* sharing (separate MBT and BST
    /// memories); the saving is the difference.
    pub fn unshared_bits(self) -> u64 {
        // Without sharing: the full MBT memory plus a dedicated BST memory
        // of level-2 geometry.
        self.physical_bits() + self.level2_words as u64 * u64::from(self.level2_width)
    }

    /// Word width shared by both blocks.
    pub fn width_bits(self) -> u32 {
        self.level2_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_display_and_default() {
        assert_eq!(ShareSelect::Mbt.to_string(), "MBT");
        assert_eq!(ShareSelect::Bst.to_string(), "BST");
        assert_eq!(ShareSelect::default(), ShareSelect::Mbt);
    }

    #[test]
    #[should_panic(expected = "one word geometry")]
    fn mismatched_width_rejected() {
        let _ = SharedRegion::new(8, 36, 8, 40);
    }

    #[test]
    fn capacity_arithmetic() {
        let sh = SharedRegion::new(1024, 32, 512, 32);
        assert_eq!(sh.mbt_level2_words(), 1024);
        assert_eq!(sh.bst_node_words(), 1536);
        assert_eq!(sh.extra_words(ShareSelect::Bst), 512);
        assert_eq!(sh.extra_words(ShareSelect::Mbt), 0);
        assert_eq!(sh.physical_bits(), 1536 * 32);
        assert!(sh.unshared_bits() > sh.physical_bits());
        assert_eq!(sh.width_bits(), 32);
    }

    #[test]
    fn sharing_saves_level2_duplicate() {
        let sh = SharedRegion::new(1000, 36, 3000, 36);
        assert_eq!(sh.unshared_bits() - sh.physical_bits(), 1000 * 36);
    }
}
