//! Register-based port lookup (paper §IV.C, Table IV).
//!
//! Each unique port range occupies one hardware register holding the range
//! bounds and its label; all registers compare against the query in
//! parallel, and a priority encoder orders the matching labels **exact
//! match first, then tightest range** — Table IV's example: for destination
//! port 7812 against `[0,65535]→A`, `[7812,7812]→B`, `[7810,7820]→C` the
//! output order is B, C, A. The whole lookup takes two clock cycles
//! (compare + encode, §V.B) and no block-memory accesses.

use crate::engine::{EngineError, EngineKind, FieldEngine, LookupCost};
use crate::label::{Label, LabelEntry, LabelList};
use crate::store::LabelStore;
use spc_hwsim::AccessCounts;
use spc_types::{DimValue, PortRange};

/// One port match register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PortRegister {
    range: PortRange,
    entry: LabelEntry,
}

/// The parallel port-register engine.
///
/// ```
/// use spc_lookup::{PortRegisters, LabelStore, LabelEntry, Label, FieldEngine};
/// use spc_types::{DimValue, PortRange, Priority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = LabelStore::new("unused", 1, 7);
/// let mut regs = PortRegisters::new(128);
/// regs.insert(&mut store, DimValue::Port(PortRange::exact(443)),
///             LabelEntry::by_priority(Label(0), Priority(0)))?;
/// let r = regs.lookup(&store, 443)?;
/// assert_eq!(r.labels.head().unwrap().label, Label(0));
/// assert_eq!(r.cycles, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PortRegisters {
    regs: Vec<PortRegister>,
    capacity: usize,
    label_bits: u8,
}

impl PortRegisters {
    /// Creates a bank of `capacity` registers (the paper's 7-bit port
    /// labels imply 128).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "register bank must be non-empty");
        PortRegisters {
            regs: Vec::new(),
            capacity,
            label_bits: 7,
        }
    }

    /// Registers in use.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether no registers are used.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The Table IV ordering key: exact matches first (key 0), then ranges
    /// by tightness (width − 1), so wider ranges sort later and the full
    /// wildcard last.
    fn order_key(range: PortRange) -> u64 {
        u64::from(range.width() - 1)
    }
}

impl FieldEngine for PortRegisters {
    fn kind(&self) -> EngineKind {
        EngineKind::PortRegisters
    }

    fn insert(
        &mut self,
        _store: &mut LabelStore,
        value: DimValue,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        let DimValue::Port(range) = value else {
            return Err(EngineError::ValueKind { expected: "Port" });
        };
        let entry = LabelEntry::with_order(entry.label, entry.priority, Self::order_key(range));
        if let Some(reg) = self.regs.iter_mut().find(|r| r.range == range) {
            reg.entry = entry; // upsert (priority refresh)
            return Ok(());
        }
        if self.regs.len() >= self.capacity {
            return Err(EngineError::Capacity {
                what: "port registers".into(),
            });
        }
        self.regs.push(PortRegister { range, entry });
        Ok(())
    }

    fn remove(
        &mut self,
        _store: &mut LabelStore,
        value: DimValue,
        label: Label,
    ) -> Result<(), EngineError> {
        let DimValue::Port(range) = value else {
            return Err(EngineError::ValueKind { expected: "Port" });
        };
        let before = self.regs.len();
        self.regs
            .retain(|r| !(r.range == range && r.entry.label == label));
        if self.regs.len() == before {
            return Err(EngineError::NotFound);
        }
        Ok(())
    }

    fn lookup_into(
        &self,
        _store: &LabelStore,
        query: u16,
        out: &mut LabelList,
    ) -> Result<LookupCost, EngineError> {
        out.clear();
        for r in self.regs.iter().filter(|r| r.range.contains(query)) {
            out.insert(r.entry);
        }
        Ok(LookupCost {
            mem_reads: 0,
            cycles: 2,
        })
    }

    /// Register bits: two 16-bit bounds plus the label per register.
    fn provisioned_bits(&self) -> u64 {
        self.capacity as u64 * (16 + 16 + u64::from(self.label_bits))
    }

    fn used_bits(&self) -> u64 {
        self.regs.len() as u64 * (16 + 16 + u64::from(self.label_bits))
    }

    fn access_counts(&self) -> AccessCounts {
        AccessCounts::default() // registers, not block memory
    }

    fn reset_access_counts(&self) {}

    fn is_pipelined(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Priority;

    fn store() -> LabelStore {
        LabelStore::new("unused", 1, 7)
    }

    fn ins(regs: &mut PortRegisters, s: &mut LabelStore, lo: u16, hi: u16, id: u16, p: u32) {
        regs.insert(
            s,
            DimValue::Port(PortRange::new(lo, hi).unwrap()),
            LabelEntry::by_priority(Label(id), Priority(p)),
        )
        .unwrap();
    }

    #[test]
    fn table_iv_ordering() {
        // Paper Table IV: A=[0,65535] range, B=[7812,7812] exact,
        // C=[7810,7820] range; query 7812 must yield B, C, A.
        let mut s = store();
        let mut regs = PortRegisters::new(16);
        ins(&mut regs, &mut s, 0, 65535, 0, 0); // A, highest rule priority
        ins(&mut regs, &mut s, 7812, 7812, 1, 1); // B
        ins(&mut regs, &mut s, 7810, 7820, 2, 2); // C
        let r = regs.lookup(&s, 7812).unwrap();
        let ids: Vec<u16> = r.labels.iter().map(|e| e.label.0).collect();
        assert_eq!(ids, vec![1, 2, 0], "expected B, C, A");
        assert_eq!(r.cycles, 2);
        assert_eq!(r.mem_reads, 0);
    }

    #[test]
    fn non_matching_excluded() {
        let mut s = store();
        let mut regs = PortRegisters::new(16);
        ins(&mut regs, &mut s, 10, 20, 1, 0);
        assert!(regs.lookup(&s, 9).unwrap().labels.is_empty());
        assert!(regs.lookup(&s, 21).unwrap().labels.is_empty());
        assert!(!regs.lookup(&s, 10).unwrap().labels.is_empty());
    }

    #[test]
    fn capacity_and_upsert() {
        let mut s = store();
        let mut regs = PortRegisters::new(1);
        ins(&mut regs, &mut s, 1, 1, 1, 5);
        // Same range: upsert, no growth.
        ins(&mut regs, &mut s, 1, 1, 1, 2);
        assert_eq!(regs.len(), 1);
        let e = regs.insert(
            &mut s,
            DimValue::Port(PortRange::exact(2)),
            LabelEntry::by_priority(Label(2), Priority(0)),
        );
        assert!(matches!(e, Err(EngineError::Capacity { .. })));
    }

    #[test]
    fn remove_register() {
        let mut s = store();
        let mut regs = PortRegisters::new(4);
        ins(&mut regs, &mut s, 5, 10, 1, 0);
        regs.remove(
            &mut s,
            DimValue::Port(PortRange::new(5, 10).unwrap()),
            Label(1),
        )
        .unwrap();
        assert!(regs.is_empty());
        assert!(matches!(
            regs.remove(
                &mut s,
                DimValue::Port(PortRange::new(5, 10).unwrap()),
                Label(1)
            ),
            Err(EngineError::NotFound)
        ));
    }

    #[test]
    fn value_kind_checked() {
        let mut s = store();
        let mut regs = PortRegisters::new(4);
        let e = regs.insert(
            &mut s,
            DimValue::Proto(spc_types::ProtoSpec::Any),
            LabelEntry::by_priority(Label(1), Priority(0)),
        );
        assert!(matches!(
            e,
            Err(EngineError::ValueKind { expected: "Port" })
        ));
    }

    #[test]
    fn bits_accounting() {
        let mut s = store();
        let mut regs = PortRegisters::new(128);
        assert_eq!(regs.provisioned_bits(), 128 * 39);
        ins(&mut regs, &mut s, 1, 1, 1, 0);
        assert_eq!(regs.used_bits(), 39);
    }
}
