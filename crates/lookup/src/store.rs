//! The per-dimension *Labels memory block* (paper §III.D).
//!
//! Every unique rule-field value owns a priority-sorted list of labels...
//! more precisely, every *lookup structure node* points at a list stored in
//! this block. The store is deliberately separate from the lookup engines:
//! §IV.C.2 requires that "the Label memory block for one field can also be
//! stored without any effect on the chosen algorithm combination", which is
//! what lets `IPalg_s` swap MBT for BST without touching label storage.
//!
//! Accounting model: a list of `n` labels occupies `n` words of
//! `label_bits` each (priority is implied by list order in hardware).
//! Reading the head costs one access; reading the whole list costs its
//! length; inserting into / removing from a sorted list rewrites it, which
//! is charged as `new length` writes.

use crate::label::{Label, LabelEntry, LabelList};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pointer to a label list inside a [`LabelStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListPtr(pub u32);

impl fmt::Display for ListPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Error from label-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The store's provisioned entry capacity is exhausted.
    Full {
        /// Store name.
        store: String,
        /// Entry capacity.
        capacity: usize,
    },
    /// A dangling list pointer was dereferenced.
    BadPtr {
        /// Store name.
        store: String,
        /// The pointer.
        ptr: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Full { store, capacity } => {
                write!(f, "label store '{store}' is full ({capacity} entries)")
            }
            StoreError::BadPtr { store, ptr } => {
                write!(f, "dangling list pointer {ptr} in label store '{store}'")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// The Labels memory block of one dimension.
#[derive(Debug)]
pub struct LabelStore {
    name: String,
    label_bits: u8,
    capacity_entries: usize,
    lists: Vec<LabelList>,
    entries_used: usize,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl LabelStore {
    /// Creates a store provisioned for `capacity_entries` label entries of
    /// `label_bits` each.
    ///
    /// # Panics
    ///
    /// Panics if `label_bits` is 0 or `capacity_entries` is 0.
    pub fn new(name: impl Into<String>, capacity_entries: usize, label_bits: u8) -> Self {
        assert!(label_bits > 0, "label width must be positive");
        assert!(capacity_entries > 0, "store capacity must be positive");
        LabelStore {
            name: name.into(),
            label_bits,
            capacity_entries,
            lists: Vec::new(),
            entries_used: 0,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Store name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Label width in bits.
    pub fn label_bits(&self) -> u8 {
        self.label_bits
    }

    /// Allocates a new, empty list.
    ///
    /// # Errors
    ///
    /// Never fails today (lists are cheap; entries are the bounded
    /// resource) but returns `Result` for future-proofing of the pointer
    /// namespace.
    pub fn alloc_list(&mut self) -> Result<ListPtr, StoreError> {
        self.lists.push(LabelList::new());
        Ok(ListPtr(self.lists.len() as u32 - 1))
    }

    fn list_mut(&mut self, ptr: ListPtr) -> Result<&mut LabelList, StoreError> {
        let name = self.name.clone();
        self.lists
            .get_mut(ptr.0 as usize)
            .ok_or(StoreError::BadPtr {
                store: name,
                ptr: ptr.0,
            })
    }

    fn list(&self, ptr: ListPtr) -> Result<&LabelList, StoreError> {
        self.lists
            .get(ptr.0 as usize)
            .ok_or_else(|| StoreError::BadPtr {
                store: self.name.clone(),
                ptr: ptr.0,
            })
    }

    /// Inserts (or repositions) an entry in the list at `ptr`, charging a
    /// rewrite of the list.
    ///
    /// # Errors
    ///
    /// [`StoreError::Full`] if the store's entry capacity would be
    /// exceeded; [`StoreError::BadPtr`] on a dangling pointer.
    pub fn insert(&mut self, ptr: ListPtr, entry: LabelEntry) -> Result<(), StoreError> {
        let (cap, used) = (self.capacity_entries, self.entries_used);
        let list = self.list_mut(ptr)?;
        let grows = !list.contains(entry.label);
        if grows && used >= cap {
            return Err(StoreError::Full {
                store: self.name.clone(),
                capacity: cap,
            });
        }
        list.insert(entry);
        let n = list.len() as u64;
        if grows {
            self.entries_used += 1;
        }
        self.writes.fetch_add(n, Ordering::Relaxed);
        Ok(())
    }

    /// Removes a label from the list at `ptr`; charges a rewrite. Returns
    /// whether the label was present.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPtr`] on a dangling pointer.
    pub fn remove(&mut self, ptr: ListPtr, label: Label) -> Result<bool, StoreError> {
        let list = self.list_mut(ptr)?;
        let removed = list.remove(label);
        let n = list.len() as u64;
        if removed {
            self.entries_used -= 1;
            self.writes.fetch_add(n.max(1), Ordering::Relaxed);
        }
        Ok(removed)
    }

    /// Reads the head (HPML) of a list: one memory access.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPtr`] on a dangling pointer.
    pub fn read_head(&self, ptr: ListPtr) -> Result<Option<LabelEntry>, StoreError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.list(ptr)?.head().copied())
    }

    /// Reads a whole list: `len` accesses (minimum 1 — the hardware must
    /// read the head to learn the list is empty).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPtr`] on a dangling pointer.
    pub fn read_all(&self, ptr: ListPtr) -> Result<LabelList, StoreError> {
        let list = self.list(ptr)?.clone();
        self.reads
            .fetch_add((list.len() as u64).max(1), Ordering::Relaxed);
        Ok(list)
    }

    /// Reads a whole list by *appending* its entries (already in list
    /// order) to `out`, charging `len` accesses (minimum 1) — the
    /// allocation-free sibling of [`LabelStore::read_all`] behind
    /// `FieldEngine::lookup_into`. Appending to a non-empty `out` breaks
    /// its sort invariant until the caller restores it, which is why
    /// both this method's mutation primitive and the restore are
    /// crate-internal.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadPtr`] on a dangling pointer.
    pub(crate) fn read_all_into(
        &self,
        ptr: ListPtr,
        out: &mut LabelList,
    ) -> Result<u32, StoreError> {
        let list = self.list(ptr)?;
        let n = list.len() as u32;
        self.reads.fetch_add(u64::from(n).max(1), Ordering::Relaxed);
        out.append_run(list.entries());
        Ok(n)
    }

    /// Length of a list without charging an access (controller-side).
    pub fn len_untracked(&self, ptr: ListPtr) -> Result<usize, StoreError> {
        Ok(self.list(ptr)?.len())
    }

    /// Clears every list (BST software rebuild). Keeps counters.
    pub fn clear(&mut self) {
        self.lists.clear();
        self.entries_used = 0;
    }

    /// Total label entries currently stored.
    pub fn entries_used(&self) -> usize {
        self.entries_used
    }

    /// Provisioned capacity in bits.
    pub fn provisioned_bits(&self) -> u64 {
        self.capacity_entries as u64 * u64::from(self.label_bits)
    }

    /// Bits currently occupied.
    pub fn used_bits(&self) -> u64 {
        self.entries_used as u64 * u64::from(self.label_bits)
    }

    /// Access counters as a [`spc_hwsim::AccessCounts`].
    pub fn access_counts(&self) -> spc_hwsim::AccessCounts {
        spc_hwsim::AccessCounts {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets the access counters.
    pub fn reset_access_counts(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Priority;

    fn entry(id: u16, p: u32) -> LabelEntry {
        LabelEntry::by_priority(Label(id), Priority(p))
    }

    #[test]
    fn alloc_insert_read() {
        let mut s = LabelStore::new("sip_hi", 100, 13);
        let p = s.alloc_list().unwrap();
        s.insert(p, entry(2, 20)).unwrap();
        s.insert(p, entry(1, 10)).unwrap();
        assert_eq!(s.read_head(p).unwrap().unwrap().label, Label(1));
        let all = s.read_all(p).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(s.entries_used(), 2);
        assert_eq!(s.used_bits(), 26);
    }

    #[test]
    fn capacity_enforced() {
        let mut s = LabelStore::new("tiny", 1, 7);
        let p = s.alloc_list().unwrap();
        s.insert(p, entry(1, 1)).unwrap();
        assert!(matches!(
            s.insert(p, entry(2, 2)),
            Err(StoreError::Full { .. })
        ));
        // Re-inserting the same label (priority change) is not growth.
        s.insert(p, entry(1, 0)).unwrap();
    }

    #[test]
    fn remove_frees_entries() {
        let mut s = LabelStore::new("x", 10, 7);
        let p = s.alloc_list().unwrap();
        s.insert(p, entry(1, 1)).unwrap();
        assert!(s.remove(p, Label(1)).unwrap());
        assert!(!s.remove(p, Label(1)).unwrap());
        assert_eq!(s.entries_used(), 0);
        assert!(s.read_head(p).unwrap().is_none());
    }

    #[test]
    fn accounting_charges_rewrites() {
        let mut s = LabelStore::new("x", 10, 7);
        let p = s.alloc_list().unwrap();
        s.insert(p, entry(1, 1)).unwrap(); // 1 write
        s.insert(p, entry(2, 2)).unwrap(); // list len 2 -> 2 writes
        let c = s.access_counts();
        assert_eq!(c.writes, 3);
        s.read_head(p).unwrap(); // 1 read
        s.read_all(p).unwrap(); // 2 reads
        assert_eq!(s.access_counts().reads, 3);
        s.reset_access_counts();
        assert_eq!(s.access_counts().reads, 0);
    }

    #[test]
    fn empty_list_read_costs_one() {
        let mut s = LabelStore::new("x", 10, 7);
        let p = s.alloc_list().unwrap();
        let l = s.read_all(p).unwrap();
        assert!(l.is_empty());
        assert_eq!(s.access_counts().reads, 1);
    }

    #[test]
    fn bad_ptr_reported() {
        let s = LabelStore::new("x", 10, 7);
        assert!(matches!(
            s.read_head(ListPtr(3)),
            Err(StoreError::BadPtr { ptr: 3, .. })
        ));
    }

    #[test]
    fn clear_resets_usage() {
        let mut s = LabelStore::new("x", 10, 7);
        let p = s.alloc_list().unwrap();
        s.insert(p, entry(1, 1)).unwrap();
        s.clear();
        assert_eq!(s.entries_used(), 0);
        assert!(s.read_head(p).is_err());
    }
}
