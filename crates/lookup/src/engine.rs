//! The single-field lookup engine abstraction.
//!
//! Phase 2 of the paper's pipeline runs one engine per dimension in
//! parallel; each produces a pointer to a priority-sorted label list
//! (§III.B). The [`FieldEngine`] trait is the contract those engines
//! implement; the configurable architecture stores them as trait objects so
//! `IPalg_s`-style reconfiguration is a pointer swap.

use crate::label::{Label, LabelEntry, LabelError};
use crate::store::{LabelStore, StoreError};
use spc_hwsim::{AccessCounts, MemoryError};
use spc_types::DimValue;
use std::fmt;

/// Which algorithm an engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Multi-bit trie (pipelined, fast).
    Mbt,
    /// Balanced binary search tree over elementary intervals.
    Bst,
    /// Multi-level segment trie (range decomposition).
    SegmentTrie,
    /// Parallel match registers (ports).
    PortRegisters,
    /// Direct 256-entry lookup table (protocol).
    ProtocolLut,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::Mbt => "mbt",
            EngineKind::Bst => "bst",
            EngineKind::SegmentTrie => "segment-trie",
            EngineKind::PortRegisters => "port-registers",
            EngineKind::ProtocolLut => "protocol-lut",
        };
        f.write_str(s)
    }
}

/// Result of one engine lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// All matching labels, sorted with the HPML first.
    pub labels: crate::label::LabelList,
    /// Memory-word reads performed (structure nodes + label lists).
    pub mem_reads: u32,
    /// Clock cycles of this lookup in the hardware model (fixed pipeline
    /// latency for MBT, data-dependent depth for BST, ...).
    pub cycles: u32,
}

/// Accounting of one engine lookup, separate from the label payload.
///
/// [`FieldEngine::lookup_into`] returns this while writing the labels
/// into a caller-owned [`crate::label::LabelList`], so a batch caller
/// that hands in the same list every packet pays no per-lookup
/// allocation — the deepest layer of the batch-amortisation story
/// (`ClassifyScratch` reuses the list buffers, this reuses what fills
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupCost {
    /// Memory-word reads performed (structure nodes + label lists).
    pub mem_reads: u32,
    /// Clock cycles of this lookup in the hardware model.
    pub cycles: u32,
}

/// Error from engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A structural memory block or the label store ran out of capacity.
    Capacity {
        /// What overflowed (block or store name).
        what: String,
    },
    /// The engine was handed a [`DimValue`] variant it cannot store.
    ValueKind {
        /// Expected variant name.
        expected: &'static str,
    },
    /// The (value, label) pair to remove was not present.
    NotFound,
    /// The engine has deferred updates; call `flush` before lookups.
    Dirty,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Capacity { what } => write!(f, "capacity exhausted in {what}"),
            EngineError::ValueKind { expected } => {
                write!(
                    f,
                    "dimension value kind mismatch, engine expects {expected}"
                )
            }
            EngineError::NotFound => write!(f, "value/label pair not present in engine"),
            EngineError::Dirty => write!(f, "engine has unflushed updates"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MemoryError> for EngineError {
    fn from(e: MemoryError) -> Self {
        match e {
            MemoryError::Full { block, .. } => EngineError::Capacity { what: block },
            MemoryError::OutOfBounds { block, .. } => EngineError::Capacity {
                what: format!("{block} (out of bounds)"),
            },
            other => EngineError::Capacity {
                what: other.to_string(),
            },
        }
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Full { store, .. } => EngineError::Capacity { what: store },
            StoreError::BadPtr { store, ptr } => EngineError::Capacity {
                what: format!("{store} (dangling ptr {ptr})"),
            },
        }
    }
}

impl From<LabelError> for EngineError {
    fn from(e: LabelError) -> Self {
        match e {
            LabelError::Exhausted { width } => EngineError::Capacity {
                what: format!("{width}-bit label space"),
            },
        }
    }
}

/// A single-field lookup engine over 16-bit queries.
///
/// Engines do not allocate labels — the software controller does (Fig 4) —
/// they only map field values to label lists. The per-dimension
/// [`LabelStore`] is passed in from outside so the same label memory serves
/// whichever engine `IPalg_s` currently selects (§IV.C.2).
///
/// Engines are `Sync` because lookups take `&self` and all access
/// accounting is atomic: a built engine can be queried from many threads
/// at once (the ingest-pipeline's shared-engine mode relies on this).
pub trait FieldEngine: fmt::Debug + Send + Sync {
    /// The algorithm this engine implements.
    fn kind(&self) -> EngineKind;

    /// Adds (or re-prioritises) a labelled field value.
    ///
    /// Engines treat this as an upsert: inserting an existing
    /// `(value, label)` with a new priority reorders the affected lists.
    ///
    /// # Errors
    ///
    /// [`EngineError::ValueKind`] for a foreign value variant;
    /// [`EngineError::Capacity`] when a memory block fills up.
    fn insert(
        &mut self,
        store: &mut LabelStore,
        value: DimValue,
        entry: LabelEntry,
    ) -> Result<(), EngineError>;

    /// Removes a labelled field value.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotFound`] if absent, [`EngineError::ValueKind`] for
    /// a foreign value variant.
    fn remove(
        &mut self,
        store: &mut LabelStore,
        value: DimValue,
        label: Label,
    ) -> Result<(), EngineError>;

    /// Applies deferred structural work (the BST software rebuild). No-op
    /// for incrementally updatable engines.
    ///
    /// # Errors
    ///
    /// [`EngineError::Capacity`] if the rebuilt structure no longer fits.
    fn flush(&mut self, store: &mut LabelStore) -> Result<(), EngineError> {
        let _ = store;
        Ok(())
    }

    /// Looks up all labels matching `query`, writing them into `out`
    /// (cleared first) and returning only the cost counters.
    ///
    /// This is the allocation-free primitive behind
    /// [`FieldEngine::lookup`]: batch callers hand in the same
    /// [`crate::label::LabelList`] for every packet, so across a batch
    /// the per-dimension label-list allocations collapse to buffer
    /// clears. The filled `out` satisfies the usual list invariant (HPML
    /// first).
    ///
    /// # Errors
    ///
    /// [`EngineError::Dirty`] when updates are pending and the engine
    /// requires a [`FieldEngine::flush`] first.
    fn lookup_into(
        &self,
        store: &LabelStore,
        query: u16,
        out: &mut crate::label::LabelList,
    ) -> Result<LookupCost, EngineError>;

    /// Looks up all labels matching a 16-bit query value, allocating a
    /// fresh list (single-shot convenience over
    /// [`FieldEngine::lookup_into`]).
    ///
    /// # Errors
    ///
    /// As [`FieldEngine::lookup_into`].
    fn lookup(&self, store: &LabelStore, query: u16) -> Result<LookupResult, EngineError> {
        let mut labels = crate::label::LabelList::new();
        let cost = self.lookup_into(store, query, &mut labels)?;
        Ok(LookupResult {
            labels,
            mem_reads: cost.mem_reads,
            cycles: cost.cycles,
        })
    }

    /// Bits of structural memory provisioned (label store excluded).
    fn provisioned_bits(&self) -> u64;

    /// Bits of structural memory occupied.
    fn used_bits(&self) -> u64;

    /// Structural memory access counters (label store excluded).
    fn access_counts(&self) -> AccessCounts;

    /// Resets the structural access counters.
    fn reset_access_counts(&self);

    /// Whether lookups are pipelined with initiation interval 1 (the
    /// throughput model then charges 1 cycle/packet instead of the latency).
    fn is_pipelined(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions() {
        let e: EngineError = MemoryError::Full {
            block: "l2".into(),
            words: 4,
        }
        .into();
        assert!(matches!(e, EngineError::Capacity { ref what } if what == "l2"));
        let e: EngineError = StoreError::Full {
            store: "s".into(),
            capacity: 1,
        }
        .into();
        assert!(matches!(e, EngineError::Capacity { .. }));
        let e: EngineError = LabelError::Exhausted { width: 7 }.into();
        assert!(matches!(e, EngineError::Capacity { ref what } if what.contains("7-bit")));
    }

    #[test]
    fn display_strings() {
        assert_eq!(EngineKind::Mbt.to_string(), "mbt");
        assert!(EngineError::NotFound.to_string().contains("not present"));
        assert!(EngineError::Dirty.to_string().contains("unflushed"));
        assert!(EngineError::ValueKind { expected: "seg" }
            .to_string()
            .contains("seg"));
    }
}
