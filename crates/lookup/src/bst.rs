//! Balanced binary search tree (BST) — the paper's memory-lean IP lookup
//! engine (§IV.B–C).
//!
//! The unique segment prefixes of a dimension induce a set of *elementary
//! intervals* over the 16-bit value space; every interval's covering-prefix
//! set is constant, so each interval stores one precomputed,
//! priority-sorted label list. The balanced tree is *implicit*: "a simple
//! memory block is designated for each 16-bit segmented IP field" (§IV.C)
//! — interval start values are kept sorted and binary-searched, so a word
//! is just `{start:16, list_ptr}` with no child pointers. That is what
//! makes the BST far smaller than the MBT (Table VI: 49 Kbits vs 543
//! Kbits) and lets it share the MBT's memory blocks (Fig 5).
//!
//! The tree is balanced **in software** and pushed down on update — the
//! paper is explicit that this rebuild is the BST's limitation (§IV.C).
//! Updates are therefore deferred: [`FieldEngine::insert`]/`remove` mark
//! the engine dirty and [`FieldEngine::flush`] performs the rebuild;
//! lookups on a dirty engine return [`EngineError::Dirty`].

use crate::engine::{EngineError, EngineKind, FieldEngine, LookupCost};
use crate::label::{Label, LabelEntry, LabelList};
use crate::store::{LabelStore, ListPtr};
use spc_hwsim::{AccessCounts, MemoryBlock};
use spc_types::{DimValue, SegPrefix};
use std::collections::BTreeMap;

/// One word of the BST interval memory: the interval's first value and its
/// label-list pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IntervalWord {
    start: u16,
    list: ListPtr,
}

/// The balanced-BST engine over one 16-bit segment dimension.
///
/// ```
/// use spc_lookup::{RangeBst, LabelStore, LabelEntry, Label, FieldEngine};
/// use spc_types::{DimValue, SegPrefix, Priority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = LabelStore::new("dip_lo", 4096, 13);
/// let mut bst = RangeBst::new(1024);
/// bst.insert(
///     &mut store,
///     DimValue::Seg(SegPrefix::masked(0x8000, 1)),
///     LabelEntry::by_priority(Label(3), Priority(2)),
/// )?;
/// bst.flush(&mut store)?;
/// assert!(bst.lookup(&store, 0x9999)?.labels.contains(Label(3)));
/// assert!(bst.lookup(&store, 0x7fff)?.labels.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RangeBst {
    /// Unique prefixes with their current label entry (software shadow —
    /// the controller's view, not charged to hardware memory).
    values: BTreeMap<(u16, u8), LabelEntry>,
    intervals: MemoryBlock<IntervalWord>,
    dirty: bool,
}

impl RangeBst {
    /// Creates an empty engine provisioned for `max_intervals` elementary
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if `max_intervals` is zero.
    pub fn new(max_intervals: usize) -> Self {
        assert!(max_intervals > 0, "interval capacity must be positive");
        // Word: 16-bit start + 13-bit list pointer.
        let width = 16 + 13;
        RangeBst {
            values: BTreeMap::new(),
            intervals: MemoryBlock::new("bst_intervals", max_intervals, width),
            dirty: false,
        }
    }

    /// Number of unique prefixes currently stored.
    pub fn unique_values(&self) -> usize {
        self.values.len()
    }

    /// Number of elementary intervals in the current structure.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Worst-case binary-search reads per lookup (`⌈log2 n⌉ + 1`), 0 when
    /// empty.
    pub fn depth(&self) -> u32 {
        let n = self.intervals.len();
        if n == 0 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()).max(1) + 1
        }
    }

    /// Whether updates are pending a [`FieldEngine::flush`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    fn rebuild(&mut self, store: &mut LabelStore) -> Result<(), EngineError> {
        self.intervals.clear();
        store.clear();
        self.dirty = false;
        if self.values.is_empty() {
            return Ok(());
        }
        // Elementary interval boundaries.
        let mut bounds: Vec<u32> = vec![0];
        for &(value, len) in self.values.keys() {
            let p = SegPrefix::masked(value, len);
            bounds.push(u32::from(p.first()));
            bounds.push(u32::from(p.last()) + 1);
        }
        bounds.retain(|b| *b <= u32::from(u16::MAX));
        bounds.sort_unstable();
        bounds.dedup();
        let starts: Vec<u16> = bounds.iter().map(|b| *b as u16).collect();
        if starts.len() > self.intervals.words() {
            return Err(EngineError::Capacity {
                what: format!(
                    "bst_intervals ({} intervals > {} provisioned)",
                    starts.len(),
                    self.intervals.words()
                ),
            });
        }
        // Sweep with a nesting stack: segment prefixes nest or are disjoint,
        // so the active covering set at any interval is a stack.
        let mut by_start: Vec<(&(u16, u8), &LabelEntry)> = self.values.iter().collect();
        by_start.sort_by_key(|((v, l), _)| (*v, *l)); // outermost first at equal start
        let mut stack: Vec<(u16, LabelEntry)> = Vec::new(); // (interval last, entry)
        let mut next = 0usize;
        for &start in &starts {
            while let Some(&(last, _)) = stack.last() {
                if last < start {
                    stack.pop();
                } else {
                    break;
                }
            }
            while next < by_start.len() {
                let ((value, len), entry) = by_start[next];
                let p = SegPrefix::masked(*value, *len);
                if p.first() == start {
                    stack.push((p.last(), *entry));
                    next += 1;
                } else {
                    break;
                }
            }
            let ptr = store.alloc_list()?;
            for (_, entry) in &stack {
                store.insert(ptr, *entry)?;
            }
            self.intervals.alloc(IntervalWord { start, list: ptr })?;
        }
        Ok(())
    }
}

impl FieldEngine for RangeBst {
    fn kind(&self) -> EngineKind {
        EngineKind::Bst
    }

    fn insert(
        &mut self,
        _store: &mut LabelStore,
        value: DimValue,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        let DimValue::Seg(seg) = value else {
            return Err(EngineError::ValueKind { expected: "Seg" });
        };
        self.values.insert((seg.value(), seg.len()), entry);
        self.dirty = true;
        Ok(())
    }

    fn remove(
        &mut self,
        _store: &mut LabelStore,
        value: DimValue,
        label: Label,
    ) -> Result<(), EngineError> {
        let DimValue::Seg(seg) = value else {
            return Err(EngineError::ValueKind { expected: "Seg" });
        };
        let key = (seg.value(), seg.len());
        match self.values.get(&key) {
            Some(e) if e.label == label => {
                self.values.remove(&key);
                self.dirty = true;
                Ok(())
            }
            _ => Err(EngineError::NotFound),
        }
    }

    fn flush(&mut self, store: &mut LabelStore) -> Result<(), EngineError> {
        if self.dirty {
            self.rebuild(store)?;
        }
        Ok(())
    }

    // Interval 0 starts at port 0, so the binary search always lands on
    // a covering interval for any u16 query.
    #[allow(clippy::expect_used)]
    fn lookup_into(
        &self,
        store: &LabelStore,
        query: u16,
        out: &mut LabelList,
    ) -> Result<LookupCost, EngineError> {
        out.clear();
        if self.dirty {
            return Err(EngineError::Dirty);
        }
        let n = self.intervals.len();
        if n == 0 {
            return Ok(LookupCost {
                mem_reads: 0,
                cycles: 1,
            });
        }
        // Binary search for the rightmost interval start <= query.
        // Interval 0 starts at 0, so the search always lands somewhere.
        let mut reads = 0u32;
        let (mut lo, mut hi) = (0usize, n); // invariant: answer in [lo, hi)
        let mut hit = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let w = *self.intervals.read(mid)?;
            reads += 1;
            if w.start <= query {
                hit = Some(w);
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let w = hit.expect("interval 0 starts at 0");
        // One sorted run into an empty list: the invariant holds as-is.
        let list_reads = store.read_all_into(w.list, out)?.max(1);
        Ok(LookupCost {
            mem_reads: reads + list_reads,
            cycles: reads + 1, // search walk + head read
        })
    }

    fn provisioned_bits(&self) -> u64 {
        self.intervals.capacity_bits()
    }

    fn used_bits(&self) -> u64 {
        self.intervals.used_bits()
    }

    fn access_counts(&self) -> AccessCounts {
        self.intervals.accesses()
    }

    fn reset_access_counts(&self) {
        self.intervals.reset_accesses();
    }

    fn is_pipelined(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Priority;

    fn store() -> LabelStore {
        LabelStore::new("test", 8192, 13)
    }

    fn entry(id: u16, p: u32) -> LabelEntry {
        LabelEntry::by_priority(Label(id), Priority(p))
    }

    fn seg(v: u16, l: u8) -> DimValue {
        DimValue::Seg(SegPrefix::masked(v, l))
    }

    #[test]
    fn empty_engine_lookup() {
        let mut s = store();
        let mut bst = RangeBst::new(16);
        bst.flush(&mut s).unwrap();
        let r = bst.lookup(&s, 0).unwrap();
        assert!(r.labels.is_empty());
        assert_eq!(r.mem_reads, 0);
    }

    #[test]
    fn dirty_lookup_rejected() {
        let mut s = store();
        let mut bst = RangeBst::new(16);
        bst.insert(&mut s, seg(0, 0), entry(1, 1)).unwrap();
        assert!(bst.is_dirty());
        assert!(matches!(bst.lookup(&s, 0), Err(EngineError::Dirty)));
        bst.flush(&mut s).unwrap();
        assert!(bst.lookup(&s, 0).is_ok());
    }

    #[test]
    fn nested_prefixes_collect_in_priority_order() {
        let mut s = store();
        let mut bst = RangeBst::new(64);
        bst.insert(&mut s, seg(0xa000, 4), entry(1, 10)).unwrap();
        bst.insert(&mut s, seg(0xa200, 9), entry(2, 5)).unwrap();
        bst.insert(&mut s, seg(0xa234, 16), entry(3, 20)).unwrap();
        bst.flush(&mut s).unwrap();
        let r = bst.lookup(&s, 0xa234).unwrap();
        let ids: Vec<u16> = r.labels.iter().map(|e| e.label.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
        let r2 = bst.lookup(&s, 0xa900).unwrap();
        let ids2: Vec<u16> = r2.labels.iter().map(|e| e.label.0).collect();
        assert_eq!(ids2, vec![1]);
        assert!(bst.lookup(&s, 0x0001).unwrap().labels.is_empty());
    }

    #[test]
    fn wildcard_matches_everything() {
        let mut s = store();
        let mut bst = RangeBst::new(16);
        bst.insert(&mut s, seg(0, 0), entry(7, 3)).unwrap();
        bst.flush(&mut s).unwrap();
        for q in [0u16, 0x7fff, 0xffff] {
            assert!(bst.lookup(&s, q).unwrap().labels.contains(Label(7)));
        }
    }

    #[test]
    fn boundaries_are_exact() {
        let mut s = store();
        let mut bst = RangeBst::new(64);
        let p = SegPrefix::masked(0x4000, 3); // [0x4000, 0x5fff]
        bst.insert(&mut s, DimValue::Seg(p), entry(4, 0)).unwrap();
        bst.flush(&mut s).unwrap();
        assert!(bst.lookup(&s, 0x4000).unwrap().labels.contains(Label(4)));
        assert!(bst.lookup(&s, 0x5fff).unwrap().labels.contains(Label(4)));
        assert!(!bst.lookup(&s, 0x3fff).unwrap().labels.contains(Label(4)));
        assert!(!bst.lookup(&s, 0x6000).unwrap().labels.contains(Label(4)));
    }

    #[test]
    fn remove_then_flush() {
        let mut s = store();
        let mut bst = RangeBst::new(16);
        bst.insert(&mut s, seg(0x8000, 1), entry(1, 1)).unwrap();
        bst.flush(&mut s).unwrap();
        bst.remove(&mut s, seg(0x8000, 1), Label(1)).unwrap();
        bst.flush(&mut s).unwrap();
        assert!(bst.lookup(&s, 0xffff).unwrap().labels.is_empty());
        assert!(matches!(
            bst.remove(&mut s, seg(0x8000, 1), Label(1)),
            Err(EngineError::NotFound)
        ));
    }

    #[test]
    fn depth_is_logarithmic() {
        let mut s = LabelStore::new("big", 1 << 16, 13);
        let mut bst = RangeBst::new(4096);
        for i in 0..1000u16 {
            bst.insert(&mut s, seg(i << 6, 10), entry(i, u32::from(i)))
                .unwrap();
        }
        bst.flush(&mut s).unwrap();
        // ~1001 intervals -> ~11 binary search reads.
        assert!(bst.depth() <= 12, "depth {}", bst.depth());
        let r = bst.lookup(&s, 0x1234).unwrap();
        assert!(r.cycles <= bst.depth() + 1);
        assert!(!r.labels.is_empty());
        // Paper Table VI territory: ~16 accesses per packet at scale.
        assert!(r.mem_reads <= 16, "reads {}", r.mem_reads);
    }

    #[test]
    fn capacity_exceeded_reported() {
        let mut s = store();
        let mut bst = RangeBst::new(4);
        for i in 0..8u16 {
            bst.insert(&mut s, seg(i << 13, 3), entry(i, u32::from(i)))
                .unwrap();
        }
        assert!(matches!(
            bst.flush(&mut s),
            Err(EngineError::Capacity { .. })
        ));
    }

    #[test]
    fn flush_idempotent_when_clean() {
        let mut s = store();
        let mut bst = RangeBst::new(16);
        bst.insert(&mut s, seg(0, 0), entry(1, 1)).unwrap();
        bst.flush(&mut s).unwrap();
        let used = bst.used_bits();
        bst.flush(&mut s).unwrap(); // no-op
        assert_eq!(bst.used_bits(), used);
    }

    #[test]
    fn memory_footprint_smaller_than_mbt() {
        // The whole point of BST mode: same content, fewer bits (Table VI).
        use crate::mbt::{MbtConfig, MultiBitTrie};
        let mut s1 = store();
        let mut s2 = store();
        let mut bst = RangeBst::new(256);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(128));
        for i in 0..100u16 {
            let v = seg(i << 8, 8);
            bst.insert(&mut s1, v, entry(i, u32::from(i))).unwrap();
            FieldEngine::insert(&mut mbt, &mut s2, v, entry(i, u32::from(i))).unwrap();
        }
        bst.flush(&mut s1).unwrap();
        assert!(bst.used_bits() < mbt.used_bits());
        assert!(bst.used_bits() < 8_000, "bst used {} bits", bst.used_bits());
    }

    #[test]
    fn adjacent_disjoint_prefixes() {
        let mut s = store();
        let mut bst = RangeBst::new(32);
        bst.insert(&mut s, seg(0x0000, 2), entry(1, 1)).unwrap(); // [0x0000,0x3fff]
        bst.insert(&mut s, seg(0x4000, 2), entry(2, 2)).unwrap(); // [0x4000,0x7fff]
        bst.flush(&mut s).unwrap();
        assert_eq!(
            bst.lookup(&s, 0x3fff).unwrap().labels.head().unwrap().label,
            Label(1)
        );
        assert_eq!(
            bst.lookup(&s, 0x4000).unwrap().labels.head().unwrap().label,
            Label(2)
        );
        assert!(bst.lookup(&s, 0x8000).unwrap().labels.is_empty());
    }
}
