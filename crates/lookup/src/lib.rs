//! Single-field lookup engines with the DCFL label method.
//!
//! This crate implements phase 2 of the SOCC 2014 architecture: the
//! per-dimension lookup algorithms that map a 16-bit header segment to a
//! priority-sorted list of labels.
//!
//! * [`MultiBitTrie`] — fixed-stride trie with prefix expansion (5/5/6 for
//!   a segment; also the 32-bit "Option 1/2" tries of Table I);
//! * [`RangeBst`] — balanced BST over elementary intervals, software
//!   rebuilt on update (memory-lean IP algorithm);
//! * [`SegmentTrie`] — multi-level trie with canonical range decomposition
//!   (port engine of the Table I options);
//! * [`PortRegisters`] — parallel match registers with Table IV's
//!   exact-then-tightest label ordering;
//! * [`ProtocolLut`] — single-cycle direct table.
//!
//! Engines share a contract ([`FieldEngine`]) and are deliberately split
//! from the per-dimension label memory ([`LabelStore`]) so the `IPalg_s`
//! select signal can swap algorithms without touching label storage
//! (§IV.C.2), and from label allocation, which belongs to the software
//! controller (Fig 4, implemented in `spc-core`).

mod bst;
mod engine;
mod label;
mod mbt;
mod portregs;
mod protolut;
mod segtrie;
mod store;

pub use bst::RangeBst;
pub use engine::{EngineError, EngineKind, FieldEngine, LookupCost, LookupResult};
pub use label::{Label, LabelAllocator, LabelEntry, LabelError, LabelList, LabelWidths};
pub use mbt::{MbtConfig, MultiBitTrie};
pub use portregs::PortRegisters;
pub use protolut::ProtocolLut;
pub use segtrie::{SegTrieConfig, SegmentTrie};
pub use store::{LabelStore, ListPtr, StoreError};
