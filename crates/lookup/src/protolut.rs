//! Direct-indexed protocol lookup table (paper §IV.C).
//!
//! "In the Algorithm memory block, a simple Look-Up Table is utilized for
//! Protocol. The protocol value addresses the table where the label is
//! contained." A wildcard protocol rule lives in a side register; exact
//! labels order before the wildcard (§IV.C.1: "the priority label for
//! Protocol lookup is determined by the exact matching value"). Lookup is
//! a single clock cycle (§V.B).

use crate::engine::{EngineError, EngineKind, FieldEngine, LookupCost};
use crate::label::{Label, LabelEntry, LabelList};
use crate::store::LabelStore;
use spc_hwsim::{AccessCounts, MemoryBlock};
use spc_types::{DimValue, ProtoSpec};

/// Order key of exact protocol labels (sorts before the wildcard).
const EXACT_ORDER: u64 = 0;
/// Order key of the wildcard protocol label.
const ANY_ORDER: u64 = 1;

/// The 256-entry protocol LUT engine.
///
/// ```
/// use spc_lookup::{ProtocolLut, LabelStore, LabelEntry, Label, FieldEngine};
/// use spc_types::{DimValue, ProtoSpec, Priority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = LabelStore::new("unused", 1, 2);
/// let mut lut = ProtocolLut::new();
/// lut.insert(&mut store, DimValue::Proto(ProtoSpec::Exact(6)),
///            LabelEntry::by_priority(Label(0), Priority(0)))?;
/// let r = lut.lookup(&store, 6)?;
/// assert_eq!(r.cycles, 1);
/// assert!(r.labels.contains(Label(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProtocolLut {
    table: MemoryBlock<Option<LabelEntry>>,
    any: Option<LabelEntry>,
    label_bits: u8,
}

impl ProtocolLut {
    /// Creates an empty LUT (256 words pre-allocated — it is a direct
    /// table, not an allocated structure).
    #[allow(clippy::expect_used)] // exactly 256 words provisioned above
    pub fn new() -> Self {
        let label_bits = 2u8; // paper width; entry also needs a valid bit
        let mut table = MemoryBlock::new("proto_lut", 256, u32::from(label_bits) + 1);
        for _ in 0..256 {
            table.alloc(None).expect("256 words provisioned");
        }
        table.reset_accesses(); // construction is not an update cost
        ProtocolLut {
            table,
            any: None,
            label_bits,
        }
    }
}

impl Default for ProtocolLut {
    fn default() -> Self {
        ProtocolLut::new()
    }
}

impl FieldEngine for ProtocolLut {
    fn kind(&self) -> EngineKind {
        EngineKind::ProtocolLut
    }

    fn insert(
        &mut self,
        _store: &mut LabelStore,
        value: DimValue,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        let DimValue::Proto(spec) = value else {
            return Err(EngineError::ValueKind { expected: "Proto" });
        };
        match spec {
            ProtoSpec::Exact(v) => {
                let e = LabelEntry::with_order(entry.label, entry.priority, EXACT_ORDER);
                self.table.write(usize::from(v), Some(e))?;
            }
            ProtoSpec::Any => {
                self.any = Some(LabelEntry::with_order(
                    entry.label,
                    entry.priority,
                    ANY_ORDER,
                ));
            }
        }
        Ok(())
    }

    fn remove(
        &mut self,
        _store: &mut LabelStore,
        value: DimValue,
        label: Label,
    ) -> Result<(), EngineError> {
        let DimValue::Proto(spec) = value else {
            return Err(EngineError::ValueKind { expected: "Proto" });
        };
        match spec {
            ProtoSpec::Exact(v) => {
                let addr = usize::from(v);
                match self.table.get_untracked(addr).copied().flatten() {
                    Some(e) if e.label == label => {
                        self.table.write(addr, None)?;
                        Ok(())
                    }
                    _ => Err(EngineError::NotFound),
                }
            }
            ProtoSpec::Any => match self.any {
                Some(e) if e.label == label => {
                    self.any = None;
                    Ok(())
                }
                _ => Err(EngineError::NotFound),
            },
        }
    }

    fn lookup_into(
        &self,
        _store: &LabelStore,
        query: u16,
        out: &mut LabelList,
    ) -> Result<LookupCost, EngineError> {
        out.clear();
        if query <= 0xff {
            if let Some(e) = self.table.read(usize::from(query))? {
                out.insert(*e);
            }
        }
        if let Some(e) = self.any {
            out.insert(e);
        }
        Ok(LookupCost {
            mem_reads: 1,
            cycles: 1,
        })
    }

    fn provisioned_bits(&self) -> u64 {
        self.table.capacity_bits() + u64::from(self.label_bits) + 1
    }

    fn used_bits(&self) -> u64 {
        // A direct table is fully provisioned; "used" equals provisioned.
        self.provisioned_bits()
    }

    fn access_counts(&self) -> AccessCounts {
        self.table.accesses()
    }

    fn reset_access_counts(&self) {
        self.table.reset_accesses();
    }

    fn is_pipelined(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Priority;

    fn store() -> LabelStore {
        LabelStore::new("unused", 1, 2)
    }

    fn entry(id: u16, p: u32) -> LabelEntry {
        LabelEntry::by_priority(Label(id), Priority(p))
    }

    #[test]
    fn exact_before_wildcard() {
        let mut s = store();
        let mut lut = ProtocolLut::new();
        lut.insert(&mut s, DimValue::Proto(ProtoSpec::Any), entry(0, 0))
            .unwrap();
        lut.insert(&mut s, DimValue::Proto(ProtoSpec::Exact(6)), entry(1, 9))
            .unwrap();
        let r = lut.lookup(&s, 6).unwrap();
        let ids: Vec<u16> = r.labels.iter().map(|e| e.label.0).collect();
        // Exact label first despite worse rule priority (§IV.C.1).
        assert_eq!(ids, vec![1, 0]);
        // Other protocols see only the wildcard.
        let r2 = lut.lookup(&s, 17).unwrap();
        assert_eq!(r2.labels.len(), 1);
        assert_eq!(r2.labels.head().unwrap().label, Label(0));
    }

    #[test]
    fn single_cycle_single_access() {
        let mut s = store();
        let mut lut = ProtocolLut::new();
        lut.insert(&mut s, DimValue::Proto(ProtoSpec::Exact(17)), entry(1, 0))
            .unwrap();
        lut.reset_access_counts();
        let r = lut.lookup(&s, 17).unwrap();
        assert_eq!(r.cycles, 1);
        assert_eq!(lut.access_counts().reads, 1);
    }

    #[test]
    fn remove_semantics() {
        let mut s = store();
        let mut lut = ProtocolLut::new();
        lut.insert(&mut s, DimValue::Proto(ProtoSpec::Exact(6)), entry(1, 0))
            .unwrap();
        lut.insert(&mut s, DimValue::Proto(ProtoSpec::Any), entry(2, 0))
            .unwrap();
        lut.remove(&mut s, DimValue::Proto(ProtoSpec::Exact(6)), Label(1))
            .unwrap();
        assert_eq!(lut.lookup(&s, 6).unwrap().labels.len(), 1);
        // Wrong label -> NotFound.
        assert!(matches!(
            lut.remove(&mut s, DimValue::Proto(ProtoSpec::Any), Label(9)),
            Err(EngineError::NotFound)
        ));
        lut.remove(&mut s, DimValue::Proto(ProtoSpec::Any), Label(2))
            .unwrap();
        assert!(lut.lookup(&s, 6).unwrap().labels.is_empty());
    }

    #[test]
    fn out_of_range_query_sees_wildcard_only() {
        let mut s = store();
        let mut lut = ProtocolLut::new();
        lut.insert(&mut s, DimValue::Proto(ProtoSpec::Any), entry(2, 0))
            .unwrap();
        let r = lut.lookup(&s, 0x1ff).unwrap();
        assert_eq!(r.labels.len(), 1);
    }

    #[test]
    fn value_kind_checked() {
        let mut s = store();
        let mut lut = ProtocolLut::new();
        let e = lut.insert(
            &mut s,
            DimValue::Port(spc_types::PortRange::ANY),
            entry(1, 0),
        );
        assert!(matches!(
            e,
            Err(EngineError::ValueKind { expected: "Proto" })
        ));
    }
}
