//! The DCFL label method (paper §III.C): labels, label lists and
//! width-checked label allocation.

use spc_types::Priority;
use std::fmt;

/// A label tagging one unique rule-field value within one dimension.
///
/// Labels are plain small integers; their bit width is an architectural
/// parameter ([`LabelWidths`]) that bounds how many unique field values a
/// dimension can hold (13 bits for IP segments, 7 for ports, 2 for protocol
/// in the paper's prototype).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(pub u16);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A label together with its list-ordering key.
///
/// `priority` is the best (numerically smallest) [`Priority`] among the
/// rules currently using the label — the controller keeps it current so
/// that the first entry of every list is the Highest Priority Matching
/// Label (HPML). `order` is the dimension-specific sort key: rule priority
/// for IP and protocol dimensions; *exact-before-tightest-range* for port
/// dimensions (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelEntry {
    /// The label.
    pub label: Label,
    /// Best rule priority currently using this label.
    pub priority: Priority,
    /// List ordering key (smaller sorts first).
    pub order: u64,
}

impl LabelEntry {
    /// An entry ordered directly by rule priority (IP / protocol lists).
    pub fn by_priority(label: Label, priority: Priority) -> Self {
        LabelEntry {
            label,
            priority,
            order: u64::from(priority.0),
        }
    }

    /// An entry with an explicit order key (port lists).
    pub fn with_order(label: Label, priority: Priority, order: u64) -> Self {
        LabelEntry {
            label,
            priority,
            order,
        }
    }
}

/// A list of labels kept sorted by `order` (then label id for determinism).
///
/// The invariant mirrors the hardware Label memory: the head of the list is
/// the HPML, so the combination phase can consume only the first element
/// (paper §III.B phase 3).
///
/// ```
/// use spc_lookup::{Label, LabelEntry, LabelList};
/// use spc_types::Priority;
/// let mut l = LabelList::new();
/// l.insert(LabelEntry::by_priority(Label(2), Priority(5)));
/// l.insert(LabelEntry::by_priority(Label(1), Priority(0)));
/// assert_eq!(l.head().unwrap().label, Label(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelList {
    entries: Vec<LabelEntry>,
}

impl LabelList {
    /// Creates an empty list.
    pub fn new() -> Self {
        LabelList {
            entries: Vec::new(),
        }
    }

    /// Number of labels in the list.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The highest-priority entry (HPML), if any.
    pub fn head(&self) -> Option<&LabelEntry> {
        self.entries.first()
    }

    /// The entries in order.
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }

    /// Iterates the entries in order.
    pub fn iter(&self) -> std::slice::Iter<'_, LabelEntry> {
        self.entries.iter()
    }

    /// Removes every entry, keeping the allocation — the scratch-reuse
    /// primitive behind `FieldEngine::lookup_into`.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Replaces this list's contents with `other`'s, reusing the
    /// existing allocation where capacity allows.
    pub fn copy_from(&mut self, other: &LabelList) {
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Appends already-sorted entries *without* restoring the global sort
    /// invariant. Engine lookups use this to gather per-level runs into a
    /// caller-owned list; they must call [`LabelList::restore_sorted`]
    /// before the list escapes (crate-internal so the invariant cannot
    /// leak).
    pub(crate) fn append_run(&mut self, entries: &[LabelEntry]) {
        self.entries.extend_from_slice(entries);
    }

    /// Re-establishes the `(order, label)` sort invariant after one or
    /// more [`LabelList::append_run`] calls. `sort_unstable` so no
    /// allocation happens on the lookup hot path.
    pub(crate) fn restore_sorted(&mut self) {
        self.entries.sort_unstable_by_key(|e| (e.order, e.label.0));
    }

    /// Inserts an entry, keeping order. If the label is already present its
    /// entry is replaced (upsert), preserving the list invariant.
    pub fn insert(&mut self, e: LabelEntry) {
        self.entries.retain(|x| x.label != e.label);
        let pos = self
            .entries
            .partition_point(|x| (x.order, x.label.0) < (e.order, e.label.0));
        self.entries.insert(pos, e);
    }

    /// Removes a label; returns whether it was present.
    pub fn remove(&mut self, label: Label) -> bool {
        let before = self.entries.len();
        self.entries.retain(|x| x.label != label);
        self.entries.len() != before
    }

    /// Whether the label is present.
    pub fn contains(&self, label: Label) -> bool {
        self.entries.iter().any(|x| x.label == label)
    }

    /// Merges another sorted list into a new sorted list (used when a trie
    /// walk gathers lists from several levels).
    pub fn merged(&self, other: &LabelList) -> LabelList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let a = &self.entries[i];
            let b = &other.entries[j];
            if (a.order, a.label.0) <= (b.order, b.label.0) {
                out.push(*a);
                i += 1;
            } else {
                out.push(*b);
                j += 1;
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        LabelList { entries: out }
    }
}

impl FromIterator<LabelEntry> for LabelList {
    fn from_iter<T: IntoIterator<Item = LabelEntry>>(iter: T) -> Self {
        let mut l = LabelList::new();
        for e in iter {
            l.insert(e);
        }
        l
    }
}

impl<'a> IntoIterator for &'a LabelList {
    type Item = &'a LabelEntry;
    type IntoIter = std::slice::Iter<'a, LabelEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Per-dimension label bit widths (paper §IV.C.1: 13 / 7 / 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelWidths {
    /// Width of IP-segment labels.
    pub ip: u8,
    /// Width of port labels.
    pub port: u8,
    /// Width of protocol labels.
    pub proto: u8,
}

impl LabelWidths {
    /// The paper's prototype widths: IP 13, port 7, protocol 2 bits.
    pub const PAPER: LabelWidths = LabelWidths {
        ip: 13,
        port: 7,
        proto: 2,
    };

    /// Merged-key width: 4 IP labels + 2 port labels + 1 protocol label
    /// (68 bits for the paper values).
    pub fn key_bits(self) -> u32 {
        4 * u32::from(self.ip) + 2 * u32::from(self.port) + u32::from(self.proto)
    }
}

impl Default for LabelWidths {
    fn default() -> Self {
        LabelWidths::PAPER
    }
}

/// Error from label allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LabelError {
    /// The dimension ran out of label space (`2^width` values).
    Exhausted {
        /// Label width in bits.
        width: u8,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::Exhausted { width } => {
                write!(f, "label space exhausted ({}-bit labels)", width)
            }
        }
    }
}

impl std::error::Error for LabelError {}

/// Allocates labels of a fixed bit width with a free list, so deleted
/// labels are recycled (paper §IV.A: a label is deleted from the hardware
/// only when its counter reaches zero).
#[derive(Debug, Clone)]
pub struct LabelAllocator {
    width: u8,
    next: u16,
    free: Vec<Label>,
}

impl LabelAllocator {
    /// Creates an allocator for `width`-bit labels.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 16`.
    pub fn new(width: u8) -> Self {
        assert!(
            (1..=16).contains(&width),
            "label width must be in 1..=16, got {width}"
        );
        LabelAllocator {
            width,
            next: 0,
            free: Vec::new(),
        }
    }

    /// Label capacity (`2^width`).
    pub fn capacity(&self) -> usize {
        1usize << self.width
    }

    /// Labels currently live.
    pub fn live(&self) -> usize {
        usize::from(self.next) - self.free.len()
    }

    /// Allocates a fresh label.
    ///
    /// # Errors
    ///
    /// Returns [`LabelError::Exhausted`] when all `2^width` labels are live.
    pub fn alloc(&mut self) -> Result<Label, LabelError> {
        if let Some(l) = self.free.pop() {
            return Ok(l);
        }
        if usize::from(self.next) >= self.capacity() {
            return Err(LabelError::Exhausted { width: self.width });
        }
        let l = Label(self.next);
        self.next += 1;
        Ok(l)
    }

    /// Returns a label to the pool.
    pub fn free(&mut self, label: Label) {
        debug_assert!(!self.free.contains(&label), "double free of {label}");
        self.free.push(label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_keeps_priority_order() {
        let mut l = LabelList::new();
        for (id, p) in [(3u16, 30u32), (1, 10), (2, 20)] {
            l.insert(LabelEntry::by_priority(Label(id), Priority(p)));
        }
        let ids: Vec<u16> = l.iter().map(|e| e.label.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(l.head().unwrap().label, Label(1));
    }

    #[test]
    fn list_upsert_replaces() {
        let mut l = LabelList::new();
        l.insert(LabelEntry::by_priority(Label(1), Priority(10)));
        l.insert(LabelEntry::by_priority(Label(2), Priority(5)));
        // Label 1 improves to priority 1: must move to the head.
        l.insert(LabelEntry::by_priority(Label(1), Priority(1)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.head().unwrap().label, Label(1));
        assert_eq!(l.head().unwrap().priority, Priority(1));
    }

    #[test]
    fn list_remove() {
        let mut l = LabelList::new();
        l.insert(LabelEntry::by_priority(Label(1), Priority(1)));
        assert!(l.remove(Label(1)));
        assert!(!l.remove(Label(1)));
        assert!(l.is_empty());
    }

    #[test]
    fn merge_preserves_order() {
        let a: LabelList = [(1u16, 10u32), (3, 30)]
            .into_iter()
            .map(|(id, p)| LabelEntry::by_priority(Label(id), Priority(p)))
            .collect();
        let b: LabelList = [(2u16, 20u32), (4, 40)]
            .into_iter()
            .map(|(id, p)| LabelEntry::by_priority(Label(id), Priority(p)))
            .collect();
        let m = a.merged(&b);
        let ids: Vec<u16> = m.iter().map(|e| e.label.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn merge_with_empty() {
        let a: LabelList =
            std::iter::once(LabelEntry::by_priority(Label(1), Priority(1))).collect();
        assert_eq!(a.merged(&LabelList::new()), a);
        assert_eq!(LabelList::new().merged(&a), a);
    }

    #[test]
    fn order_key_overrides_priority_for_ports() {
        // Table IV: exact match (order 0) sorts before a tight range even if
        // the range belongs to a higher-priority rule.
        let mut l = LabelList::new();
        l.insert(LabelEntry::with_order(Label(10), Priority(0), 1 << 20)); // range
        l.insert(LabelEntry::with_order(Label(11), Priority(9), 0)); // exact
        assert_eq!(l.head().unwrap().label, Label(11));
    }

    #[test]
    fn allocator_alloc_free_recycle() {
        let mut a = LabelAllocator::new(2);
        let l0 = a.alloc().unwrap();
        let l1 = a.alloc().unwrap();
        assert_ne!(l0, l1);
        assert_eq!(a.live(), 2);
        a.free(l0);
        assert_eq!(a.live(), 1);
        let l0b = a.alloc().unwrap();
        assert_eq!(l0b, l0);
    }

    #[test]
    fn allocator_exhaustion() {
        let mut a = LabelAllocator::new(1);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert!(matches!(a.alloc(), Err(LabelError::Exhausted { width: 1 })));
    }

    #[test]
    fn paper_key_is_68_bits() {
        assert_eq!(LabelWidths::PAPER.key_bits(), 68);
    }

    #[test]
    #[should_panic(expected = "label width")]
    fn allocator_rejects_wide() {
        let _ = LabelAllocator::new(17);
    }
}
