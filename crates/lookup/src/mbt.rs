//! Multi-bit trie (MBT) — the paper's fast IP lookup engine (§IV.B–C).
//!
//! A fixed-stride multi-bit trie with prefix expansion. The prototype
//! configuration for a 16-bit IP segment uses three levels of 5, 5 and 6
//! bits; each level is its own memory block so the three node reads (plus
//! three label-list reads) pipeline into a 6-cycle latency with an
//! initiation interval of one packet per cycle (§V.B).
//!
//! The trie is *width-generic*: the same type implements the 32-bit,
//! 5-level tries evaluated as "Option 1/2" in Table I.

use crate::engine::{EngineError, EngineKind, FieldEngine, LookupCost, LookupResult};
use crate::label::{Label, LabelEntry, LabelList};
use crate::store::{LabelStore, ListPtr};
use spc_hwsim::{AccessCounts, MemoryBlock};
use spc_types::DimValue;

/// Geometry of a [`MultiBitTrie`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbtConfig {
    /// Key width in bits (16 for segment dimensions, 32 for full IP).
    pub key_bits: u8,
    /// Per-level strides; must sum to `key_bits`.
    pub strides: Vec<u8>,
    /// Provisioned node capacity per level (level 0 is the single root).
    pub level_nodes: Vec<usize>,
    /// Width charged per slot for the label-list pointer.
    pub list_ptr_bits: u8,
}

impl MbtConfig {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if the strides don't sum to `key_bits`, lengths mismatch, or
    /// level 0 capacity is not exactly 1.
    pub fn new(key_bits: u8, strides: Vec<u8>, level_nodes: Vec<usize>) -> Self {
        assert_eq!(
            strides.iter().map(|s| u32::from(*s)).sum::<u32>(),
            u32::from(key_bits),
            "strides must sum to key width"
        );
        assert!(
            strides.iter().all(|s| (1..=12).contains(s)),
            "strides must be 1..=12"
        );
        assert_eq!(strides.len(), level_nodes.len(), "one capacity per level");
        assert_eq!(level_nodes[0], 1, "level 0 is the single root node");
        MbtConfig {
            key_bits,
            strides,
            level_nodes,
            list_ptr_bits: 13,
        }
    }

    /// The paper's 16-bit segment trie: strides 5/5/6 (§IV.C).
    ///
    /// `leaf_nodes` provisions level 2 (the big block); level 1 is fully
    /// provisioned (32 nodes).
    pub fn segment_paper(leaf_nodes: usize) -> Self {
        MbtConfig::new(16, vec![5, 5, 6], vec![1, 32, leaf_nodes])
    }

    /// A 5-level trie over full 32-bit IP fields (Table I "Option 1").
    pub fn ip32_5level(per_level_nodes: usize) -> Self {
        MbtConfig::new(
            32,
            vec![7, 7, 6, 6, 6],
            vec![1, 128, per_level_nodes, per_level_nodes, per_level_nodes],
        )
    }

    /// A 4-level trie over full 32-bit IP fields (Table I "Option 2").
    pub fn ip32_4level(per_level_nodes: usize) -> Self {
        MbtConfig::new(
            32,
            vec![8, 8, 8, 8],
            vec![1, 256, per_level_nodes, per_level_nodes],
        )
    }

    fn cum(&self) -> Vec<u8> {
        let mut acc = 0;
        self.strides
            .iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    }

    fn child_ptr_bits(&self, level: usize) -> u32 {
        if level + 1 >= self.level_nodes.len() {
            0
        } else {
            (self.level_nodes[level + 1].max(2) as u64)
                .next_power_of_two()
                .trailing_zeros()
        }
    }

    /// Slot word width at a level: child pointer + valid bit + list pointer
    /// + valid bit.
    pub fn slot_width_bits(&self, level: usize) -> u32 {
        self.child_ptr_bits(level) + 1 + u32::from(self.list_ptr_bits) + 1
    }
}

/// One trie slot (a word of a level memory block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Slot {
    child: Option<u32>,
    list: Option<ListPtr>,
}

/// The multi-bit trie engine.
///
/// ```
/// use spc_lookup::{MultiBitTrie, MbtConfig, LabelStore, LabelEntry, Label, FieldEngine};
/// use spc_types::{DimValue, SegPrefix, Priority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = LabelStore::new("sip_hi", 1024, 13);
/// let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(64));
/// mbt.insert(
///     &mut store,
///     DimValue::Seg(SegPrefix::masked(0x0a00, 8)),
///     LabelEntry::by_priority(Label(0), Priority(0)),
/// )?;
/// let hit = mbt.lookup(&store, 0x0aff)?;
/// assert_eq!(hit.labels.head().unwrap().label, Label(0));
/// assert!(mbt.lookup(&store, 0x0bff)?.labels.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiBitTrie {
    config: MbtConfig,
    cum: Vec<u8>,
    levels: Vec<MemoryBlock<Slot>>,
    nodes_per_level: Vec<u32>,
    wildcard: Option<ListPtr>,
}

impl MultiBitTrie {
    /// Creates an empty trie with the given geometry (root pre-allocated).
    // The level-0 block is sized `level_nodes[0] << strides[0]` words, so
    // allocating the root's `1 << strides[0]` slots cannot overflow.
    #[allow(clippy::expect_used)]
    pub fn new(config: MbtConfig) -> Self {
        let cum = config.cum();
        let mut levels: Vec<MemoryBlock<Slot>> = config
            .strides
            .iter()
            .enumerate()
            .map(|(k, s)| {
                MemoryBlock::new(
                    format!("mbt_l{k}"),
                    config.level_nodes[k] << s,
                    config.slot_width_bits(k),
                )
            })
            .collect();
        // Allocate the root node.
        for _ in 0..(1usize << config.strides[0]) {
            levels[0]
                .alloc(Slot::default())
                .expect("root fits by construction");
        }
        let nodes_per_level = {
            let mut v = vec![0u32; config.strides.len()];
            v[0] = 1;
            v
        };
        MultiBitTrie {
            config,
            cum,
            levels,
            nodes_per_level,
            wildcard: None,
        }
    }

    /// The trie geometry.
    pub fn config(&self) -> &MbtConfig {
        &self.config
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.config.strides.len()
    }

    /// Fixed pipeline latency: one node read plus one list read per level.
    pub fn latency_cycles(&self) -> u32 {
        2 * self.num_levels() as u32
    }

    /// Nodes allocated per level.
    pub fn node_counts(&self) -> &[u32] {
        &self.nodes_per_level
    }

    fn chunk(&self, value: u32, level: usize) -> usize {
        let shift = u32::from(self.config.key_bits) - u32::from(self.cum[level]);
        ((value >> shift) as usize) & ((1 << self.config.strides[level]) - 1)
    }

    fn alloc_node(&mut self, level: usize) -> Result<u32, EngineError> {
        let slots = 1usize << self.config.strides[level];
        if self.levels[level].free_words() < slots {
            return Err(EngineError::Capacity {
                what: format!("mbt_l{level} nodes"),
            });
        }
        let base = self.levels[level].len();
        for _ in 0..slots {
            self.levels[level].alloc(Slot::default())?;
        }
        let idx = (base >> self.config.strides[level]) as u32;
        self.nodes_per_level[level] += 1;
        Ok(idx)
    }

    fn slot_addr(&self, level: usize, node: u32, idx: usize) -> usize {
        ((node as usize) << self.config.strides[level]) + idx
    }

    /// Level index whose cumulative stride first covers `len`.
    // `cum` ends at `key_bits` and insert validates `len <= key_bits`, so
    // a covering level always exists.
    #[allow(clippy::expect_used)]
    fn target_level(&self, len: u8) -> usize {
        self.cum
            .iter()
            .position(|c| len <= *c)
            .expect("len <= key_bits")
    }

    /// Inserts a `(value, len)` prefix with the given label entry.
    ///
    /// # Errors
    ///
    /// [`EngineError::Capacity`] when a level block or the label store is
    /// full.
    pub fn insert_prefix(
        &mut self,
        store: &mut LabelStore,
        value: u32,
        len: u8,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        assert!(len <= self.config.key_bits, "prefix longer than key");
        if len == 0 {
            let ptr = match self.wildcard {
                Some(p) => p,
                None => {
                    let p = store.alloc_list()?;
                    self.wildcard = Some(p);
                    p
                }
            };
            store.insert(ptr, entry)?;
            return Ok(());
        }
        let target = self.target_level(len);
        let mut node = 0u32;
        for level in 0..target {
            let idx = self.chunk(value, level);
            let addr = self.slot_addr(level, node, idx);
            let mut slot = *self.levels[level].read(addr)?;
            let child = match slot.child {
                Some(c) => c,
                None => {
                    let c = self.alloc_node(level + 1)?;
                    slot.child = Some(c);
                    self.levels[level].write(addr, slot)?;
                    c
                }
            };
            node = child;
        }
        // Prefix expansion at the target level.
        let fill = 1usize << (self.cum[target] - len);
        let base = self.chunk(value, target) & !(fill - 1);
        for i in 0..fill {
            let addr = self.slot_addr(target, node, base + i);
            let mut slot = *self.levels[target].read(addr)?;
            let ptr = match slot.list {
                Some(p) => p,
                None => {
                    let p = store.alloc_list()?;
                    slot.list = Some(p);
                    self.levels[target].write(addr, slot)?;
                    p
                }
            };
            store.insert(ptr, entry)?;
        }
        Ok(())
    }

    /// Removes a `(value, len, label)` binding.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotFound`] when the prefix/label is absent.
    pub fn remove_prefix(
        &mut self,
        store: &mut LabelStore,
        value: u32,
        len: u8,
        label: Label,
    ) -> Result<(), EngineError> {
        assert!(len <= self.config.key_bits, "prefix longer than key");
        if len == 0 {
            let ptr = self.wildcard.ok_or(EngineError::NotFound)?;
            if !store.remove(ptr, label)? {
                return Err(EngineError::NotFound);
            }
            return Ok(());
        }
        let target = self.target_level(len);
        let mut node = 0u32;
        for level in 0..target {
            let idx = self.chunk(value, level);
            let addr = self.slot_addr(level, node, idx);
            let slot = *self.levels[level].read(addr)?;
            node = slot.child.ok_or(EngineError::NotFound)?;
        }
        let fill = 1usize << (self.cum[target] - len);
        let base = self.chunk(value, target) & !(fill - 1);
        let mut removed_any = false;
        for i in 0..fill {
            let addr = self.slot_addr(target, node, base + i);
            let slot = *self.levels[target].read(addr)?;
            if let Some(ptr) = slot.list {
                removed_any |= store.remove(ptr, label)?;
            }
        }
        if removed_any {
            Ok(())
        } else {
            Err(EngineError::NotFound)
        }
    }

    /// Looks up a full-width key, collecting label lists along the path.
    ///
    /// # Errors
    ///
    /// Never fails for in-range keys; `Result` mirrors the trait.
    pub fn lookup_key(&self, store: &LabelStore, key: u32) -> Result<LookupResult, EngineError> {
        let mut labels = LabelList::new();
        let cost = self.lookup_key_into(store, key, &mut labels)?;
        Ok(LookupResult {
            labels,
            mem_reads: cost.mem_reads,
            cycles: cost.cycles,
        })
    }

    /// As [`MultiBitTrie::lookup_key`], but writing into a caller-owned
    /// list (cleared first) so batch callers pay no per-lookup
    /// allocation.
    ///
    /// # Errors
    ///
    /// As [`MultiBitTrie::lookup_key`].
    pub fn lookup_key_into(
        &self,
        store: &LabelStore,
        key: u32,
        out: &mut LabelList,
    ) -> Result<LookupCost, EngineError> {
        out.clear();
        let mut reads = 0u32;
        let mut runs = 0u32;
        if let Some(ptr) = self.wildcard {
            if store.len_untracked(ptr)? > 0 {
                reads += store.read_all_into(ptr, out)?;
                runs += 1;
            }
        }
        let mut node = 0u32;
        for level in 0..self.num_levels() {
            let idx = self.chunk(key, level);
            let addr = self.slot_addr(level, node, idx);
            let slot = *self.levels[level].read(addr)?;
            reads += 1;
            if let Some(ptr) = slot.list {
                reads += store.read_all_into(ptr, out)?;
                runs += 1;
            }
            match slot.child {
                Some(c) => node = c,
                None => break,
            }
        }
        if runs > 1 {
            // Each run is sorted; one unstable sort restores the global
            // invariant without allocating.
            out.restore_sorted();
        }
        Ok(LookupCost {
            mem_reads: reads,
            cycles: self.latency_cycles(),
        })
    }
}

impl FieldEngine for MultiBitTrie {
    fn kind(&self) -> EngineKind {
        EngineKind::Mbt
    }

    fn insert(
        &mut self,
        store: &mut LabelStore,
        value: DimValue,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        let DimValue::Seg(seg) = value else {
            return Err(EngineError::ValueKind { expected: "Seg" });
        };
        debug_assert_eq!(self.config.key_bits, 16, "segment engine must be 16-bit");
        self.insert_prefix(store, u32::from(seg.value()), seg.len(), entry)
    }

    fn remove(
        &mut self,
        store: &mut LabelStore,
        value: DimValue,
        label: Label,
    ) -> Result<(), EngineError> {
        let DimValue::Seg(seg) = value else {
            return Err(EngineError::ValueKind { expected: "Seg" });
        };
        self.remove_prefix(store, u32::from(seg.value()), seg.len(), label)
    }

    fn lookup_into(
        &self,
        store: &LabelStore,
        query: u16,
        out: &mut LabelList,
    ) -> Result<LookupCost, EngineError> {
        self.lookup_key_into(store, u32::from(query), out)
    }

    fn provisioned_bits(&self) -> u64 {
        self.levels
            .iter()
            .map(spc_hwsim::MemoryBlock::capacity_bits)
            .sum()
    }

    fn used_bits(&self) -> u64 {
        self.levels
            .iter()
            .map(spc_hwsim::MemoryBlock::used_bits)
            .sum()
    }

    fn access_counts(&self) -> AccessCounts {
        self.levels
            .iter()
            .map(spc_hwsim::MemoryBlock::accesses)
            .sum()
    }

    fn reset_access_counts(&self) {
        for b in &self.levels {
            b.reset_accesses();
        }
    }

    fn is_pipelined(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Priority, SegPrefix};

    fn store() -> LabelStore {
        LabelStore::new("test", 4096, 13)
    }

    fn entry(id: u16, p: u32) -> LabelEntry {
        LabelEntry::by_priority(Label(id), Priority(p))
    }

    #[test]
    fn empty_lookup_is_empty() {
        let s = store();
        let mbt = MultiBitTrie::new(MbtConfig::segment_paper(16));
        let r = mbt.lookup(&s, 0x1234).unwrap();
        assert!(r.labels.is_empty());
        assert_eq!(r.cycles, 6); // paper §V.B: 6-cycle MBT latency
        assert!(r.mem_reads >= 1);
    }

    #[test]
    fn exact_and_nested_prefixes_collect() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(64));
        // /4, /9 and /16 nested prefixes all matching 0xa234.
        mbt.insert_prefix(&mut s, 0xa000, 4, entry(1, 10)).unwrap();
        mbt.insert_prefix(&mut s, 0xa200, 9, entry(2, 5)).unwrap();
        mbt.insert_prefix(&mut s, 0xa234, 16, entry(3, 20)).unwrap();
        let r = mbt.lookup_key(&s, 0xa234).unwrap();
        let ids: Vec<u16> = r.labels.iter().map(|e| e.label.0).collect();
        assert_eq!(ids, vec![2, 1, 3]); // sorted by priority 5,10,20
                                        // Non-matching key sees only the /4.
        let r2 = mbt.lookup_key(&s, 0xa900).unwrap();
        let ids2: Vec<u16> = r2.labels.iter().map(|e| e.label.0).collect();
        assert_eq!(ids2, vec![1]);
    }

    #[test]
    fn wildcard_prefix_matches_everything() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(8));
        mbt.insert_prefix(&mut s, 0, 0, entry(9, 1)).unwrap();
        for q in [0u32, 0xffff, 0x8000] {
            let r = mbt.lookup_key(&s, q).unwrap();
            assert!(r.labels.contains(Label(9)));
        }
    }

    #[test]
    fn expansion_covers_whole_range() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(8));
        // /7 prefix expands into 2^(10-7)=8 level-1 slots... check the
        // boundary values all match and neighbours don't.
        let p = SegPrefix::masked(0x4600, 7);
        mbt.insert_prefix(&mut s, u32::from(p.value()), 7, entry(4, 0))
            .unwrap();
        assert!(mbt
            .lookup_key(&s, u32::from(p.first()))
            .unwrap()
            .labels
            .contains(Label(4)));
        assert!(mbt
            .lookup_key(&s, u32::from(p.last()))
            .unwrap()
            .labels
            .contains(Label(4)));
        assert!(!mbt
            .lookup_key(&s, u32::from(p.first().wrapping_sub(1)))
            .unwrap()
            .labels
            .contains(Label(4)));
        assert!(!mbt
            .lookup_key(&s, u32::from(p.last().wrapping_add(1)))
            .unwrap()
            .labels
            .contains(Label(4)));
    }

    #[test]
    fn remove_prefix_clears_labels() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(8));
        mbt.insert_prefix(&mut s, 0xa000, 4, entry(1, 1)).unwrap();
        mbt.remove_prefix(&mut s, 0xa000, 4, Label(1)).unwrap();
        assert!(mbt.lookup_key(&s, 0xa000).unwrap().labels.is_empty());
        assert!(matches!(
            mbt.remove_prefix(&mut s, 0xa000, 4, Label(1)),
            Err(EngineError::NotFound)
        ));
    }

    #[test]
    fn capacity_error_on_leaf_exhaustion() {
        let mut s = store();
        // Only 1 leaf node: two distinct level-2 paths can't both fit.
        let mut mbt = MultiBitTrie::new(MbtConfig::new(16, vec![5, 5, 6], vec![1, 32, 1]));
        mbt.insert_prefix(&mut s, 0x0000, 16, entry(1, 1)).unwrap();
        let err = mbt.insert_prefix(&mut s, 0xffff, 16, entry(2, 2));
        assert!(matches!(err, Err(EngineError::Capacity { .. })));
    }

    #[test]
    fn upsert_reorders_priority() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(8));
        mbt.insert_prefix(&mut s, 0xa000, 8, entry(1, 50)).unwrap();
        mbt.insert_prefix(&mut s, 0xa000, 4, entry(2, 10)).unwrap();
        assert_eq!(
            mbt.lookup_key(&s, 0xa0ff)
                .unwrap()
                .labels
                .head()
                .unwrap()
                .label,
            Label(2)
        );
        // Label 1's value gains a higher-priority user.
        mbt.insert_prefix(&mut s, 0xa000, 8, entry(1, 1)).unwrap();
        assert_eq!(
            mbt.lookup_key(&s, 0xa0ff)
                .unwrap()
                .labels
                .head()
                .unwrap()
                .label,
            Label(1)
        );
    }

    #[test]
    fn trait_rejects_wrong_value_kind() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(8));
        let err = FieldEngine::insert(
            &mut mbt,
            &mut s,
            DimValue::Port(spc_types::PortRange::ANY),
            entry(1, 1),
        );
        assert!(matches!(
            err,
            Err(EngineError::ValueKind { expected: "Seg" })
        ));
    }

    #[test]
    fn access_counting_increases_on_lookup() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(8));
        mbt.insert_prefix(&mut s, 0xa000, 8, entry(1, 1)).unwrap();
        mbt.reset_access_counts();
        s.reset_access_counts();
        let r = mbt.lookup_key(&s, 0xa0ff).unwrap();
        let struct_reads = mbt.access_counts().reads;
        let list_reads = s.access_counts().reads;
        assert_eq!(struct_reads + list_reads, u64::from(r.mem_reads));
    }

    #[test]
    fn ip32_lookup() {
        let mut s = LabelStore::new("ip32", 4096, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::ip32_5level(256));
        mbt.insert_prefix(&mut s, 0x0a000000, 8, entry(1, 1))
            .unwrap();
        mbt.insert_prefix(&mut s, 0x0a0b0c00, 24, entry(2, 2))
            .unwrap();
        let r = mbt.lookup_key(&s, 0x0a0b0c0d).unwrap();
        assert_eq!(r.labels.len(), 2);
        assert_eq!(r.cycles, 10); // 5 levels * 2
        let r2 = mbt.lookup_key(&s, 0x0b000000).unwrap();
        assert!(r2.labels.is_empty());
    }

    #[test]
    fn memory_accounting_monotone() {
        let mut s = store();
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(64));
        let before = mbt.used_bits();
        mbt.insert_prefix(&mut s, 0x1234, 16, entry(1, 1)).unwrap();
        assert!(mbt.used_bits() > before);
        assert!(mbt.provisioned_bits() >= mbt.used_bits());
    }

    #[test]
    #[should_panic(expected = "strides must sum")]
    fn bad_strides_rejected() {
        let _ = MbtConfig::new(16, vec![5, 5], vec![1, 32]);
    }
}
