//! Multi-level segment trie over ranges (the "Segment trie" of the paper's
//! previous-work comparison, Table I Options 1/2).
//!
//! A k-level trie over the 16-bit port space. A range is inserted by
//! canonical decomposition: every maximal trie cell fully covered by the
//! range receives the range's label, so a lookup only walks root→leaf and
//! concatenates the label lists it passes — the same access pattern as the
//! MBT, but for arbitrary ranges instead of prefixes.

use crate::engine::{EngineError, EngineKind, FieldEngine, LookupCost};
use crate::label::{Label, LabelEntry, LabelList};
use crate::store::{LabelStore, ListPtr};
use spc_hwsim::{AccessCounts, MemoryBlock};
use spc_types::{DimValue, PortRange};

/// Geometry of a [`SegmentTrie`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegTrieConfig {
    /// Per-level strides; must sum to 16.
    pub strides: Vec<u8>,
    /// Provisioned node capacity per level (level 0 is the root).
    pub level_nodes: Vec<usize>,
    /// Width charged per slot for the label-list pointer.
    pub list_ptr_bits: u8,
}

impl SegTrieConfig {
    /// Validated constructor (see [`crate::MbtConfig::new`] for the rules).
    ///
    /// # Panics
    ///
    /// Panics if strides don't sum to 16 or capacities mismatch.
    pub fn new(strides: Vec<u8>, level_nodes: Vec<usize>) -> Self {
        assert_eq!(
            strides.iter().map(|s| u32::from(*s)).sum::<u32>(),
            16,
            "strides must sum to 16"
        );
        assert_eq!(strides.len(), level_nodes.len(), "one capacity per level");
        assert_eq!(level_nodes[0], 1, "level 0 is the single root node");
        SegTrieConfig {
            strides,
            level_nodes,
            list_ptr_bits: 7,
        }
    }

    /// The 4-level segment trie of Table I Option 1 (4-bit strides).
    pub fn four_level(per_level_nodes: usize) -> Self {
        SegTrieConfig::new(
            vec![4, 4, 4, 4],
            vec![1, 16, per_level_nodes, per_level_nodes],
        )
    }

    /// The 5-level segment trie of Table I Option 2.
    pub fn five_level(per_level_nodes: usize) -> Self {
        SegTrieConfig::new(
            vec![4, 3, 3, 3, 3],
            vec![1, 16, per_level_nodes, per_level_nodes, per_level_nodes],
        )
    }

    fn cum(&self) -> Vec<u8> {
        let mut acc = 0;
        self.strides
            .iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    }

    fn child_ptr_bits(&self, level: usize) -> u32 {
        if level + 1 >= self.level_nodes.len() {
            0
        } else {
            (self.level_nodes[level + 1].max(2) as u64)
                .next_power_of_two()
                .trailing_zeros()
        }
    }

    /// Slot word width at a level.
    pub fn slot_width_bits(&self, level: usize) -> u32 {
        self.child_ptr_bits(level) + 1 + u32::from(self.list_ptr_bits) + 1
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Slot {
    child: Option<u32>,
    list: Option<ListPtr>,
}

/// The segment-trie engine for port ranges.
///
/// ```
/// use spc_lookup::{SegmentTrie, SegTrieConfig, LabelStore, LabelEntry, Label, FieldEngine};
/// use spc_types::{DimValue, PortRange, Priority};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = LabelStore::new("dst_port", 4096, 7);
/// let mut st = SegmentTrie::new(SegTrieConfig::four_level(64));
/// st.insert(
///     &mut store,
///     DimValue::Port(PortRange::new(1024, 2047)?),
///     LabelEntry::by_priority(Label(1), Priority(0)),
/// )?;
/// assert!(st.lookup(&store, 1500)?.labels.contains(Label(1)));
/// assert!(st.lookup(&store, 2048)?.labels.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SegmentTrie {
    config: SegTrieConfig,
    cum: Vec<u8>,
    levels: Vec<MemoryBlock<Slot>>,
}

/// Per-slot callback used by the canonical-range walk: receives the level
/// memories, the level index and the slot address.
type SlotOp<'a> =
    dyn FnMut(&mut Vec<MemoryBlock<Slot>>, usize, usize) -> Result<(), EngineError> + 'a;

impl SegmentTrie {
    /// Creates an empty trie (root pre-allocated).
    // The level-0 block is sized `level_nodes[0] << strides[0]` words, so
    // allocating the root's `1 << strides[0]` slots cannot overflow.
    #[allow(clippy::expect_used)]
    pub fn new(config: SegTrieConfig) -> Self {
        let cum = config.cum();
        let mut levels: Vec<MemoryBlock<Slot>> = config
            .strides
            .iter()
            .enumerate()
            .map(|(k, s)| {
                MemoryBlock::new(
                    format!("segtrie_l{k}"),
                    config.level_nodes[k] << s,
                    config.slot_width_bits(k),
                )
            })
            .collect();
        for _ in 0..(1usize << config.strides[0]) {
            levels[0]
                .alloc(Slot::default())
                .expect("root fits by construction");
        }
        SegmentTrie {
            config,
            cum,
            levels,
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.config.strides.len()
    }

    /// Fixed pipeline latency: node + list read per level.
    pub fn latency_cycles(&self) -> u32 {
        2 * self.num_levels() as u32
    }

    fn slot_addr(&self, level: usize, node: u32, idx: usize) -> usize {
        ((node as usize) << self.config.strides[level]) + idx
    }

    fn alloc_node(&mut self, level: usize) -> Result<u32, EngineError> {
        let slots = 1usize << self.config.strides[level];
        if self.levels[level].free_words() < slots {
            return Err(EngineError::Capacity {
                what: format!("segtrie_l{level} nodes"),
            });
        }
        let base = self.levels[level].len();
        for _ in 0..slots {
            self.levels[level].alloc(Slot::default())?;
        }
        Ok((base >> self.config.strides[level]) as u32)
    }

    /// Cell width (values per slot) at `level`.
    fn cell(&self, level: usize) -> u32 {
        1u32 << (16 - u32::from(self.cum[level]))
    }

    /// Applies `op` to every canonical slot of `range`; `op` returns
    /// whether to continue. Used for both insert and remove.
    fn for_canonical_slots(
        &mut self,
        level: usize,
        node: u32,
        node_base: u32,
        lo: u32,
        hi: u32,
        op: &mut SlotOp<'_>,
    ) -> Result<(), EngineError> {
        let cell = self.cell(level);
        let nslots = 1usize << self.config.strides[level];
        for i in 0..nslots {
            let s_lo = node_base + i as u32 * cell;
            let s_hi = s_lo + cell - 1;
            if s_hi < lo || s_lo > hi {
                continue;
            }
            let addr = self.slot_addr(level, node, i);
            if lo <= s_lo && s_hi <= hi {
                op(&mut self.levels, level, addr)?;
            } else {
                debug_assert!(
                    level + 1 < self.num_levels(),
                    "unit cells are always covered"
                );
                let mut slot = *self.levels[level].read(addr)?;
                let child = match slot.child {
                    Some(c) => c,
                    None => {
                        let c = self.alloc_node(level + 1)?;
                        slot.child = Some(c);
                        self.levels[level].write(addr, slot)?;
                        c
                    }
                };
                self.for_canonical_slots(level + 1, child, s_lo, lo.max(s_lo), hi.min(s_hi), op)?;
            }
        }
        Ok(())
    }

    /// Inserts a port range with the given label entry.
    ///
    /// # Errors
    ///
    /// [`EngineError::Capacity`] when a level block or the store is full.
    pub fn insert_range(
        &mut self,
        store: &mut LabelStore,
        range: PortRange,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        let mut op = |levels: &mut Vec<MemoryBlock<Slot>>,
                      level: usize,
                      addr: usize|
         -> Result<(), EngineError> {
            let mut slot = *levels[level].read(addr)?;
            let ptr = match slot.list {
                Some(p) => p,
                None => {
                    let p = store.alloc_list()?;
                    slot.list = Some(p);
                    levels[level].write(addr, slot)?;
                    p
                }
            };
            store.insert(ptr, entry)?;
            Ok(())
        };
        self.for_canonical_slots(
            0,
            0,
            0,
            u32::from(range.lo()),
            u32::from(range.hi()),
            &mut op,
        )
    }

    /// Removes a port range / label binding.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotFound`] when nothing was removed.
    pub fn remove_range(
        &mut self,
        store: &mut LabelStore,
        range: PortRange,
        label: Label,
    ) -> Result<(), EngineError> {
        let mut removed = false;
        let mut op = |levels: &mut Vec<MemoryBlock<Slot>>,
                      level: usize,
                      addr: usize|
         -> Result<(), EngineError> {
            let slot = *levels[level].read(addr)?;
            if let Some(ptr) = slot.list {
                removed |= store.remove(ptr, label)?;
            }
            Ok(())
        };
        self.for_canonical_slots(
            0,
            0,
            0,
            u32::from(range.lo()),
            u32::from(range.hi()),
            &mut op,
        )?;
        if removed {
            Ok(())
        } else {
            Err(EngineError::NotFound)
        }
    }
}

impl FieldEngine for SegmentTrie {
    fn kind(&self) -> EngineKind {
        EngineKind::SegmentTrie
    }

    fn insert(
        &mut self,
        store: &mut LabelStore,
        value: DimValue,
        entry: LabelEntry,
    ) -> Result<(), EngineError> {
        let DimValue::Port(range) = value else {
            return Err(EngineError::ValueKind { expected: "Port" });
        };
        self.insert_range(store, range, entry)
    }

    fn remove(
        &mut self,
        store: &mut LabelStore,
        value: DimValue,
        label: Label,
    ) -> Result<(), EngineError> {
        let DimValue::Port(range) = value else {
            return Err(EngineError::ValueKind { expected: "Port" });
        };
        self.remove_range(store, range, label)
    }

    fn lookup_into(
        &self,
        store: &LabelStore,
        query: u16,
        out: &mut LabelList,
    ) -> Result<LookupCost, EngineError> {
        out.clear();
        let mut reads = 0u32;
        let mut runs = 0u32;
        let mut node = 0u32;
        for level in 0..self.num_levels() {
            let shift = 16 - u32::from(self.cum[level]);
            let idx = (usize::from(query) >> shift) & ((1 << self.config.strides[level]) - 1);
            let addr = self.slot_addr(level, node, idx);
            let slot = *self.levels[level].read(addr)?;
            reads += 1;
            if let Some(ptr) = slot.list {
                reads += store.read_all_into(ptr, out)?;
                runs += 1;
            }
            match slot.child {
                Some(c) => node = c,
                None => break,
            }
        }
        if runs > 1 {
            out.restore_sorted();
        }
        Ok(LookupCost {
            mem_reads: reads,
            cycles: self.latency_cycles(),
        })
    }

    fn provisioned_bits(&self) -> u64 {
        self.levels
            .iter()
            .map(spc_hwsim::MemoryBlock::capacity_bits)
            .sum()
    }

    fn used_bits(&self) -> u64 {
        self.levels
            .iter()
            .map(spc_hwsim::MemoryBlock::used_bits)
            .sum()
    }

    fn access_counts(&self) -> AccessCounts {
        self.levels
            .iter()
            .map(spc_hwsim::MemoryBlock::accesses)
            .sum()
    }

    fn reset_access_counts(&self) {
        for b in &self.levels {
            b.reset_accesses();
        }
    }

    fn is_pipelined(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Priority;

    fn store() -> LabelStore {
        LabelStore::new("ports", 8192, 7)
    }

    fn entry(id: u16, p: u32) -> LabelEntry {
        LabelEntry::by_priority(Label(id), Priority(p))
    }

    #[test]
    fn exact_port() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::four_level(64));
        t.insert_range(&mut s, PortRange::exact(80), entry(1, 0))
            .unwrap();
        assert!(t.lookup(&s, 80).unwrap().labels.contains(Label(1)));
        assert!(t.lookup(&s, 81).unwrap().labels.is_empty());
        assert!(t.lookup(&s, 79).unwrap().labels.is_empty());
    }

    #[test]
    fn unaligned_range_boundaries() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::four_level(128));
        t.insert_range(&mut s, PortRange::new(100, 9999).unwrap(), entry(2, 0))
            .unwrap();
        for q in [100u16, 101, 5000, 9998, 9999] {
            assert!(t.lookup(&s, q).unwrap().labels.contains(Label(2)), "q={q}");
        }
        for q in [99u16, 10000, 0, 65535] {
            assert!(!t.lookup(&s, q).unwrap().labels.contains(Label(2)), "q={q}");
        }
    }

    #[test]
    fn full_wildcard_is_cheap() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::four_level(16));
        t.insert_range(&mut s, PortRange::ANY, entry(3, 0)).unwrap();
        // Wildcard fills only the 16 root slots, no children.
        assert_eq!(t.levels[1].len(), 0);
        assert!(t.lookup(&s, 12345).unwrap().labels.contains(Label(3)));
    }

    #[test]
    fn overlapping_ranges_both_found() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::four_level(128));
        t.insert_range(&mut s, PortRange::new(0, 65535).unwrap(), entry(1, 30))
            .unwrap();
        t.insert_range(&mut s, PortRange::new(7810, 7820).unwrap(), entry(2, 20))
            .unwrap();
        t.insert_range(&mut s, PortRange::exact(7812), entry(3, 10))
            .unwrap();
        let r = t.lookup(&s, 7812).unwrap();
        let ids: Vec<u16> = r.labels.iter().map(|e| e.label.0).collect();
        assert_eq!(ids, vec![3, 2, 1]);
        let r2 = t.lookup(&s, 7815).unwrap();
        assert_eq!(r2.labels.len(), 2);
    }

    #[test]
    fn remove_range() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::four_level(64));
        let r = PortRange::new(5, 300).unwrap();
        t.insert_range(&mut s, r, entry(1, 0)).unwrap();
        t.remove_range(&mut s, r, Label(1)).unwrap();
        for q in [5u16, 150, 300] {
            assert!(t.lookup(&s, q).unwrap().labels.is_empty());
        }
        assert!(matches!(
            t.remove_range(&mut s, r, Label(1)),
            Err(EngineError::NotFound)
        ));
    }

    #[test]
    fn five_level_config() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::five_level(128));
        assert_eq!(t.num_levels(), 5);
        assert_eq!(t.latency_cycles(), 10);
        t.insert_range(&mut s, PortRange::new(1000, 2000).unwrap(), entry(1, 0))
            .unwrap();
        assert!(t.lookup(&s, 1500).unwrap().labels.contains(Label(1)));
    }

    #[test]
    fn capacity_error() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::new(vec![4, 4, 4, 4], vec![1, 1, 1, 1]));
        // Two ranges needing different level-1 nodes can't fit.
        t.insert_range(&mut s, PortRange::new(0, 5).unwrap(), entry(1, 0))
            .unwrap();
        let e = t.insert_range(&mut s, PortRange::new(30000, 30005).unwrap(), entry(2, 0));
        assert!(matches!(e, Err(EngineError::Capacity { .. })));
    }

    #[test]
    fn trait_value_kind() {
        let mut s = store();
        let mut t = SegmentTrie::new(SegTrieConfig::four_level(16));
        let e = FieldEngine::insert(
            &mut t,
            &mut s,
            DimValue::Proto(spc_types::ProtoSpec::Any),
            entry(1, 0),
        );
        assert!(matches!(
            e,
            Err(EngineError::ValueKind { expected: "Port" })
        ));
    }
}
