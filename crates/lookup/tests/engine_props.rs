//! Property tests: every single-field engine must agree with a naive
//! reference on randomized workloads — the matching-label set of a query
//! is exactly the set of inserted values containing it.
//!
//! The generators are seeded (`StdRng::seed_from_u64`) so every run
//! exercises the same cases; failures print the case number and query.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use spc_lookup::{
    FieldEngine, Label, LabelEntry, LabelStore, MbtConfig, MultiBitTrie, PortRegisters,
    ProtocolLut, RangeBst, SegTrieConfig, SegmentTrie,
};
use spc_types::{DimValue, PortRange, Priority, ProtoSpec, SegPrefix};
use std::collections::BTreeSet;

const CASES: u64 = 64;

fn rand_seg(rng: &mut StdRng) -> SegPrefix {
    SegPrefix::masked(rng.gen(), rng.gen_range(0u8..=16))
}

fn rand_segs(rng: &mut StdRng, max: usize) -> Vec<SegPrefix> {
    let n = rng.gen_range(1..max);
    let mut dedup: Vec<SegPrefix> = Vec::new();
    for _ in 0..n {
        let s = rand_seg(rng);
        if !dedup.contains(&s) {
            dedup.push(s);
        }
    }
    dedup
}

fn rand_ranges(rng: &mut StdRng, max: usize) -> Vec<PortRange> {
    let n = rng.gen_range(1..max);
    let mut dedup: Vec<PortRange> = Vec::new();
    for _ in 0..n {
        let (a, b) = (rng.gen::<u16>(), rng.gen::<u16>());
        let r = PortRange::new(a.min(b), a.max(b)).unwrap();
        if !dedup.contains(&r) {
            dedup.push(r);
        }
    }
    dedup
}

/// Reference: which of the (deduplicated) values match the query.
fn expected_labels<T: Copy>(
    values: &[T],
    q: u16,
    matches: impl Fn(T, u16) -> bool,
) -> BTreeSet<u16> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| matches(**v, q))
        .map(|(i, _)| i as u16)
        .collect()
}

fn got_labels(list: &spc_lookup::LabelList) -> BTreeSet<u16> {
    list.iter().map(|e| e.label.0).collect()
}

#[test]
fn mbt_matches_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + case);
        let dedup = rand_segs(&mut rng, 12);
        let mut store = LabelStore::new("t", 1 << 14, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(2048));
        for (i, s) in dedup.iter().enumerate() {
            mbt.insert(
                &mut store,
                DimValue::Seg(*s),
                LabelEntry::by_priority(Label(i as u16), Priority(i as u32)),
            )
            .unwrap();
        }
        let mut queries: Vec<u16> = (0..8).map(|_| rng.gen()).collect();
        queries.extend(dedup.iter().map(|s| s.first()));
        for q in queries {
            let r = mbt.lookup(&store, q).unwrap();
            assert_eq!(
                got_labels(&r.labels),
                expected_labels(&dedup, q, |s: SegPrefix, q| s.matches(q)),
                "case {case} q={q:#x}"
            );
            assert_eq!(r.cycles, 6, "case {case}");
        }
    }
}

#[test]
fn bst_matches_mbt() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + case);
        let dedup = rand_segs(&mut rng, 12);
        let mut s1 = LabelStore::new("a", 1 << 14, 13);
        let mut s2 = LabelStore::new("b", 1 << 14, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(2048));
        let mut bst = RangeBst::new(4096);
        for (i, s) in dedup.iter().enumerate() {
            let e = LabelEntry::by_priority(Label(i as u16), Priority(i as u32));
            mbt.insert(&mut s1, DimValue::Seg(*s), e).unwrap();
            bst.insert(&mut s2, DimValue::Seg(*s), e).unwrap();
        }
        bst.flush(&mut s2).unwrap();
        for _ in 0..8 {
            let q: u16 = rng.gen();
            let a = mbt.lookup(&s1, q).unwrap();
            let b = bst.lookup(&s2, q).unwrap();
            // Same label sets AND same head (both priority-ordered).
            assert_eq!(
                got_labels(&a.labels),
                got_labels(&b.labels),
                "case {case} q={q:#x}"
            );
            assert_eq!(
                a.labels.head().map(|e| e.label),
                b.labels.head().map(|e| e.label),
                "case {case} q={q:#x}"
            );
        }
    }
}

#[test]
fn segment_trie_matches_registers() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + case);
        let dedup = rand_ranges(&mut rng, 12);
        let mut s1 = LabelStore::new("a", 1 << 14, 13);
        let mut s2 = LabelStore::new("b", 16, 7);
        let mut st = SegmentTrie::new(SegTrieConfig::four_level(4096));
        let mut regs = PortRegisters::new(64);
        for (i, r) in dedup.iter().enumerate() {
            let e = LabelEntry::by_priority(Label(i as u16), Priority(i as u32));
            st.insert(&mut s1, DimValue::Port(*r), e).unwrap();
            regs.insert(&mut s2, DimValue::Port(*r), e).unwrap();
        }
        let mut queries: Vec<u16> = (0..8).map(|_| rng.gen()).collect();
        queries.extend(dedup.iter().flat_map(|r| [r.lo(), r.hi()]));
        for q in queries {
            let a = st.lookup(&s1, q).unwrap();
            let b = regs.lookup(&s2, q).unwrap();
            assert_eq!(
                got_labels(&a.labels),
                got_labels(&b.labels),
                "case {case} q={q}"
            );
            assert_eq!(
                got_labels(&a.labels),
                expected_labels(&dedup, q, |r: PortRange, q| r.contains(q)),
                "case {case} q={q}"
            );
        }
    }
}

#[test]
fn protocol_lut_matches_reference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4000 + case);
        let n = rng.gen_range(1..6);
        let mut dedup: Vec<Option<u8>> = Vec::new();
        for _ in 0..n {
            let p = if rng.gen_bool(0.25) {
                None
            } else {
                Some(rng.gen_range(0u8..=40))
            };
            if !dedup.contains(&p) {
                dedup.push(p);
            }
        }
        let q: u8 = rng.gen_range(0..=45);
        let mut store = LabelStore::new("p", 8, 2);
        let mut lut = ProtocolLut::new();
        for (i, p) in dedup.iter().enumerate() {
            let spec = match p {
                Some(v) => ProtoSpec::Exact(*v),
                None => ProtoSpec::Any,
            };
            lut.insert(
                &mut store,
                DimValue::Proto(spec),
                LabelEntry::by_priority(Label(i as u16), Priority(i as u32)),
            )
            .unwrap();
        }
        let r = lut.lookup(&store, u16::from(q)).unwrap();
        let want = expected_labels(&dedup, u16::from(q), |p: Option<u8>, q| match p {
            Some(v) => u16::from(v) == q,
            None => true,
        });
        assert_eq!(got_labels(&r.labels), want, "case {case} q={q}");
    }
}

#[test]
fn mbt_remove_is_inverse_of_insert() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5000 + case);
        let dedup = rand_segs(&mut rng, 10);
        let q: u16 = rng.gen();
        let mut store = LabelStore::new("t", 1 << 14, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(2048));
        for (i, s) in dedup.iter().enumerate() {
            mbt.insert(
                &mut store,
                DimValue::Seg(*s),
                LabelEntry::by_priority(Label(i as u16), Priority(i as u32)),
            )
            .unwrap();
        }
        // Remove all but the first value; only its label may remain.
        for (i, s) in dedup.iter().enumerate().skip(1) {
            mbt.remove(&mut store, DimValue::Seg(*s), Label(i as u16))
                .unwrap();
        }
        let r = mbt.lookup(&store, q).unwrap();
        let want = expected_labels(&dedup[..1], q, |s: SegPrefix, q| s.matches(q));
        assert_eq!(got_labels(&r.labels), want, "case {case} q={q:#x}");
    }
}
