//! Property tests: every single-field engine must agree with a naive
//! reference on arbitrary workloads — the matching-label set of a query is
//! exactly the set of inserted values containing it.

use proptest::prelude::*;
use spc_lookup::{
    FieldEngine, Label, LabelEntry, LabelStore, MbtConfig, MultiBitTrie, PortRegisters,
    ProtocolLut, RangeBst, SegTrieConfig, SegmentTrie,
};
use spc_types::{DimValue, PortRange, Priority, ProtoSpec, SegPrefix};
use std::collections::BTreeSet;

fn arb_seg() -> impl Strategy<Value = SegPrefix> {
    (any::<u16>(), 0u8..=16).prop_map(|(v, l)| SegPrefix::masked(v, l))
}

fn arb_ranges() -> impl Strategy<Value = Vec<PortRange>> {
    prop::collection::vec(
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| PortRange::new(a.min(b), a.max(b)).unwrap()),
        1..12,
    )
}

/// Reference: which of the (deduplicated) values match the query.
fn expected_labels<T: Copy>(values: &[T], q: u16, matches: impl Fn(T, u16) -> bool) -> BTreeSet<u16> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| matches(**v, q))
        .map(|(i, _)| i as u16)
        .collect()
}

fn got_labels(list: &spc_lookup::LabelList) -> BTreeSet<u16> {
    list.iter().map(|e| e.label.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mbt_matches_reference(segs in prop::collection::vec(arb_seg(), 1..12), qs in prop::collection::vec(any::<u16>(), 8)) {
        let mut dedup: Vec<SegPrefix> = Vec::new();
        for s in segs {
            if !dedup.contains(&s) {
                dedup.push(s);
            }
        }
        let mut store = LabelStore::new("t", 1 << 14, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(2048));
        for (i, s) in dedup.iter().enumerate() {
            mbt.insert(&mut store, DimValue::Seg(*s), LabelEntry::by_priority(Label(i as u16), Priority(i as u32))).unwrap();
        }
        let mut queries = qs;
        queries.extend(dedup.iter().map(|s| s.first()));
        for q in queries {
            let r = mbt.lookup(&store, q).unwrap();
            prop_assert_eq!(
                got_labels(&r.labels),
                expected_labels(&dedup, q, |s: SegPrefix, q| s.matches(q)),
                "q={:#x}", q
            );
            prop_assert_eq!(r.cycles, 6);
        }
    }

    #[test]
    fn bst_matches_mbt(segs in prop::collection::vec(arb_seg(), 1..12), qs in prop::collection::vec(any::<u16>(), 8)) {
        let mut dedup: Vec<SegPrefix> = Vec::new();
        for s in segs {
            if !dedup.contains(&s) {
                dedup.push(s);
            }
        }
        let mut s1 = LabelStore::new("a", 1 << 14, 13);
        let mut s2 = LabelStore::new("b", 1 << 14, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(2048));
        let mut bst = RangeBst::new(4096);
        for (i, s) in dedup.iter().enumerate() {
            let e = LabelEntry::by_priority(Label(i as u16), Priority(i as u32));
            mbt.insert(&mut s1, DimValue::Seg(*s), e).unwrap();
            bst.insert(&mut s2, DimValue::Seg(*s), e).unwrap();
        }
        bst.flush(&mut s2).unwrap();
        for q in qs {
            let a = mbt.lookup(&s1, q).unwrap();
            let b = bst.lookup(&s2, q).unwrap();
            // Same label sets AND same head (both priority-ordered).
            prop_assert_eq!(got_labels(&a.labels), got_labels(&b.labels), "q={:#x}", q);
            prop_assert_eq!(a.labels.head().map(|e| e.label), b.labels.head().map(|e| e.label));
        }
    }

    #[test]
    fn segment_trie_matches_registers(ranges in arb_ranges(), qs in prop::collection::vec(any::<u16>(), 8)) {
        let mut dedup: Vec<PortRange> = Vec::new();
        for r in ranges {
            if !dedup.contains(&r) {
                dedup.push(r);
            }
        }
        let mut s1 = LabelStore::new("a", 1 << 14, 13);
        let mut s2 = LabelStore::new("b", 16, 7);
        let mut st = SegmentTrie::new(SegTrieConfig::four_level(4096));
        let mut regs = PortRegisters::new(64);
        for (i, r) in dedup.iter().enumerate() {
            let e = LabelEntry::by_priority(Label(i as u16), Priority(i as u32));
            st.insert(&mut s1, DimValue::Port(*r), e).unwrap();
            regs.insert(&mut s2, DimValue::Port(*r), e).unwrap();
        }
        let mut queries = qs;
        queries.extend(dedup.iter().flat_map(|r| [r.lo(), r.hi()]));
        for q in queries {
            let a = st.lookup(&s1, q).unwrap();
            let b = regs.lookup(&s2, q).unwrap();
            prop_assert_eq!(got_labels(&a.labels), got_labels(&b.labels), "q={}", q);
            prop_assert_eq!(
                got_labels(&a.labels),
                expected_labels(&dedup, q, |r: PortRange, q| r.contains(q))
            );
        }
    }

    #[test]
    fn protocol_lut_matches_reference(protos in prop::collection::vec(prop_oneof![(0u8..=40).prop_map(Some), Just(None)], 1..6), q in 0u8..=45) {
        let mut dedup: Vec<Option<u8>> = Vec::new();
        for p in protos {
            if !dedup.contains(&p) {
                dedup.push(p);
            }
        }
        let mut store = LabelStore::new("p", 8, 2);
        let mut lut = ProtocolLut::new();
        for (i, p) in dedup.iter().enumerate() {
            let spec = match p {
                Some(v) => ProtoSpec::Exact(*v),
                None => ProtoSpec::Any,
            };
            lut.insert(&mut store, DimValue::Proto(spec), LabelEntry::by_priority(Label(i as u16), Priority(i as u32))).unwrap();
        }
        let r = lut.lookup(&store, u16::from(q)).unwrap();
        let want = expected_labels(&dedup, u16::from(q), |p: Option<u8>, q| match p {
            Some(v) => u16::from(v) == q,
            None => true,
        });
        prop_assert_eq!(got_labels(&r.labels), want);
    }

    #[test]
    fn mbt_remove_is_inverse_of_insert(segs in prop::collection::vec(arb_seg(), 1..10), q in any::<u16>()) {
        let mut dedup: Vec<SegPrefix> = Vec::new();
        for s in segs {
            if !dedup.contains(&s) {
                dedup.push(s);
            }
        }
        let mut store = LabelStore::new("t", 1 << 14, 13);
        let mut mbt = MultiBitTrie::new(MbtConfig::segment_paper(2048));
        for (i, s) in dedup.iter().enumerate() {
            mbt.insert(&mut store, DimValue::Seg(*s), LabelEntry::by_priority(Label(i as u16), Priority(i as u32))).unwrap();
        }
        // Remove all but the first value; only its label may remain.
        for (i, s) in dedup.iter().enumerate().skip(1) {
            mbt.remove(&mut store, DimValue::Seg(*s), Label(i as u16)).unwrap();
        }
        let r = mbt.lookup(&store, q).unwrap();
        let want = expected_labels(&dedup[..1], q, |s: SegPrefix, q| s.matches(q));
        prop_assert_eq!(got_labels(&r.labels), want);
    }
}
