//! Shared harness utilities for the table-reproduction binaries and
//! criterion benches.
//!
//! Every `table*`/`fig*` binary prints the paper's rows next to our
//! measured values and also emits a JSON record (on `--json`) so results
//! can be collected mechanically. Workload scale can be overridden with
//! `SPC_SCALE` (rule count, default per experiment) to trade fidelity for
//! runtime.

pub mod json;

pub use json::{ToJson, Value as JsonValue};
use spc_classbench::{FilterKind, RuleSetGenerator, SyntheticTrace, TraceGenerator, TraceSource};
use spc_types::{Header, RuleSet};

/// The canonical seeds used by every experiment, so all tables are
/// regenerated from identical inputs.
pub const SEED_RULES: u64 = 2014;
/// Trace generation seed.
pub const SEED_TRACE: u64 = 353; // first page of the paper

/// Standard rule set used throughout the evaluation.
pub fn ruleset(kind: FilterKind, size: usize) -> RuleSet {
    RuleSetGenerator::new(kind, size)
        .seed(SEED_RULES)
        .generate()
}

/// The canonical evaluation traffic profile: 90 % matching traffic,
/// seeded with [`SEED_TRACE`].
pub fn traffic() -> TraceGenerator {
    TraceGenerator::new().seed(SEED_TRACE).match_fraction(0.9)
}

/// Standard evaluation workload as a streaming [`TraceSource`].
pub fn trace_source(rules: &RuleSet, len: usize) -> SyntheticTrace<'_> {
    traffic().stream(rules, len)
}

/// Standard evaluation trace, materialised — for harnesses (criterion
/// timing loops, oracle vectors) that need the whole workload at once.
/// Everything else should stream from [`trace_source`].
#[allow(clippy::expect_used)] // synthetic sources are infallible
pub fn trace(rules: &RuleSet, len: usize) -> Vec<Header> {
    trace_source(rules, len)
        .collect_headers()
        .expect("synthetic sources cannot fail")
}

/// Reads a scale override from `SPC_SCALE`.
pub fn scale_or(default: usize) -> usize {
    std::env::var("SPC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Whether `--json` was passed.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints a serialisable record as pretty JSON when `--json` is set.
pub fn emit_json<T: ToJson>(record: &T) {
    if json_mode() {
        println!("{}", record.to_json().pretty());
    }
}

/// Converts bits to the paper's "Mb" (megabits).
pub fn mbits(bits: u64) -> f64 {
    bits as f64 / 1.0e6
}

/// Converts bits to Kbits.
pub fn kbits(bits: u64) -> f64 {
    bits as f64 / 1.0e3
}

/// One row of a printed table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (algorithm / configuration).
    pub name: String,
    /// Column values, in table order.
    pub values: Vec<String>,
}

crate::json_object!(Row { name, values });

/// Prints an aligned table with a header, a separator and rows.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    widths.insert(
        0,
        rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4),
    );
    for r in rows {
        for (i, v) in r.values.iter().enumerate() {
            widths[i + 1] = widths[i + 1].max(v.len());
        }
    }
    print!("{:<w$}  ", "", w = widths[0]);
    for (i, c) in columns.iter().enumerate() {
        print!("{:>w$}  ", c, w = widths[i + 1]);
    }
    println!();
    for r in rows {
        print!("{:<w$}  ", r.name, w = widths[0]);
        for (i, v) in r.values.iter().enumerate() {
            print!("{:>w$}  ", v, w = widths[i + 1]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruleset_deterministic() {
        assert_eq!(ruleset(FilterKind::Acl, 200), ruleset(FilterKind::Acl, 200));
    }

    #[test]
    fn unit_conversions() {
        assert!((mbits(5_960_000) - 5.96).abs() < 1e-9);
        assert!((kbits(543_000) - 543.0).abs() < 1e-9);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[Row {
                name: "x".into(),
                values: vec!["1".into(), "2".into()],
            }],
        );
    }

    #[test]
    fn row_serialises() {
        let r = Row {
            name: "x".into(),
            values: vec!["1".into()],
        };
        let s = r.to_json().pretty();
        assert!(s.contains("\"name\": \"x\""), "{s}");
    }
}
