//! A dependency-free JSON emitter for the `--json` record output.
//!
//! The harness used to lean on `serde`/`serde_json` for this; the offline
//! build replaces that with a tiny value tree ([`Value`]), a conversion
//! trait ([`ToJson`]) and the [`crate::json_object!`] macro that stamps out
//! field-by-field struct impls (the moral equivalent of
//! `#[derive(Serialize)]` for the record structs the binaries emit).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i128),
    /// A float (non-finite values are emitted as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) if items.is_empty() => out.push_str("[]"),
            Value::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) if fields.is_empty() => out.push_str("{}"),
            Value::Object(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Value`] tree.
pub trait ToJson {
    /// The JSON view of `self`.
    fn to_json(&self) -> Value;
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_to_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Implements [`ToJson`] for a struct with public fields, field by field —
/// the stand-in for `#[derive(Serialize)]` on record structs.
#[macro_export]
macro_rules! json_object {
    ($t:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $t {
            fn to_json(&self) -> $crate::JsonValue {
                $crate::JsonValue::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

// JSON views of the library report types the binaries embed in their
// records (the trait is local, so the foreign impls live here).

impl ToJson for spc_types::FieldUniques {
    fn to_json(&self) -> Value {
        Value::object([
            ("src_ip", self.src_ip.to_json()),
            ("dst_ip", self.dst_ip.to_json()),
            ("src_port", self.src_port.to_json()),
            ("dst_port", self.dst_port.to_json()),
            ("proto", self.proto.to_json()),
        ])
    }
}

impl ToJson for spc_classbench::RuleSetStats {
    fn to_json(&self) -> Value {
        Value::object([
            ("name", self.name.to_json()),
            ("rules", self.rules.to_json()),
            ("uniques", self.uniques.to_json()),
            ("segment_uniques", self.segment_uniques.to_json()),
            ("label_saving", self.label_saving.to_json()),
        ])
    }
}

impl ToJson for spc_core::SharingReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("physical_bits", self.physical_bits.to_json()),
            ("mbt_bits", self.mbt_bits.to_json()),
            ("bst_bits", self.bst_bits.to_json()),
            ("freed_bits_bst_mode", self.freed_bits_bst_mode.to_json()),
            ("extra_rule_capacity", self.extra_rule_capacity.to_json()),
            ("unshared_bits", self.unshared_bits.to_json()),
        ])
    }
}

impl ToJson for spc_analyze::Severity {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for spc_analyze::Finding {
    fn to_json(&self) -> Value {
        Value::object([
            ("severity", self.severity.to_json()),
            ("code", self.kind.code().to_json()),
            (
                "rules",
                Value::Array(
                    self.rules
                        .iter()
                        .map(|r| Value::Int(i128::from(r.0)))
                        .collect(),
                ),
            ),
            ("message", self.message.to_json()),
        ])
    }
}

impl ToJson for spc_analyze::RuleSetReport {
    fn to_json(&self) -> Value {
        // Per-dimension arrays keyed by the canonical dimension names.
        fn dims(counts: &[usize; 7]) -> Value {
            Value::Object(
                spc_types::ALL_DIMS
                    .iter()
                    .zip(counts.iter())
                    .map(|(d, &n)| (d.to_string(), n.to_json()))
                    .collect(),
            )
        }
        Value::object([
            ("rules", self.rules.to_json()),
            (
                "max_severity",
                self.max_severity().map_or(Value::Null, |s| s.to_json()),
            ),
            ("findings", self.findings.to_json()),
            ("dim_cardinality", dims(&self.dim_cardinality)),
            ("max_match_depth", dims(&self.max_match_depth)),
            ("distinct_keys", self.distinct_keys.to_json()),
            // u128 bounds can exceed every JSON integer convention; emit
            // them as decimal strings.
            (
                "combo_upper_bound",
                self.combo_upper_bound.to_string().to_json(),
            ),
            (
                "intersection_bound",
                self.intersection_bound.to_string().to_json(),
            ),
            (
                "shadowed_rules",
                Value::Array(
                    self.shadowed_rules()
                        .iter()
                        .map(|r| Value::Int(i128::from(r.0)))
                        .collect(),
                ),
            ),
            ("exhaustive", self.exhaustive.to_json()),
            ("probes", self.probes.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(42u32.to_json().pretty(), "42");
        assert_eq!((-3i32).to_json().pretty(), "-3");
        assert_eq!(true.to_json().pretty(), "true");
        assert_eq!(1.5f64.to_json().pretty(), "1.5");
        assert_eq!(Value::Num(f64::NAN).pretty(), "null");
        assert_eq!("a\"b\n".to_json().pretty(), "\"a\\\"b\\n\"");
        assert_eq!(Option::<u32>::None.to_json().pretty(), "null");
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u32, "x"), (2, "y")];
        let s = v.to_json().pretty();
        assert!(s.starts_with('['), "{s}");
        assert!(s.contains("\"x\""), "{s}");
        let arr = [1u8, 2, 3];
        assert_eq!(
            arr.to_json(),
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn object_builder_and_macro_shape() {
        let o = Value::object([("a", 1u8.to_json()), ("b", Value::Null)]);
        let s = o.pretty();
        assert!(s.contains("\"a\": 1"), "{s}");
        assert!(s.contains("\"b\": null"), "{s}");
    }

    #[test]
    fn empty_containers_compact() {
        assert_eq!(Value::Array(vec![]).pretty(), "[]");
        assert_eq!(Value::Object(vec![]).pretty(), "{}");
    }
}
