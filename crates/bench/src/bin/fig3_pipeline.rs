//! Fig 3 — the 4-phase lookup pipeline: per-phase cycle breakdown and
//! latency/throughput in both IP-algorithm configurations.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, print_table, ruleset, scale_or, trace, Row};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, CombineStrategy, IpAlg};
use spc_hwsim::MIN_PACKET_BYTES;

struct PhaseRec {
    alg: String,
    avg_phase_cycles: [f64; 4],
    avg_latency_cycles: f64,
    avg_initiation_interval: f64,
    lookups_per_sec_millions: f64,
    gbps_at_40b: f64,
}

struct Record {
    experiment: &'static str,
    rows: Vec<PhaseRec>,
}

fn run(alg: IpAlg, n: usize) -> PhaseRec {
    let rules = ruleset(FilterKind::Acl, n);
    let mut cfg = ArchConfig::large()
        .with_ip_alg(alg)
        .with_combine(CombineStrategy::FirstLabel);
    cfg.rule_filter_addr_bits = 15;
    let mut cls = Classifier::new(cfg);
    cls.load(&rules).expect("fits");
    let t = trace(&rules, 3000);
    let mut phases = [0f64; 4];
    let (mut lat, mut ii) = (0f64, 0f64);
    for h in &t {
        let c = cls.classify(h);
        for (i, p) in c.timing.phase_cycles.iter().enumerate() {
            phases[i] += f64::from(*p);
        }
        lat += f64::from(c.timing.latency_cycles());
        ii += f64::from(c.timing.initiation_interval);
    }
    let n = t.len() as f64;
    for p in &mut phases {
        *p /= n;
    }
    let clock = cls.config().clock;
    PhaseRec {
        alg: alg.to_string(),
        avg_phase_cycles: phases,
        avg_latency_cycles: lat / n,
        avg_initiation_interval: ii / n,
        lookups_per_sec_millions: clock.lookups_per_sec(ii / n) / 1e6,
        gbps_at_40b: clock.throughput_gbps(ii / n, MIN_PACKET_BYTES),
    }
}

spc_bench::json_object!(PhaseRec {
    alg,
    avg_phase_cycles,
    avg_latency_cycles,
    avg_initiation_interval,
    lookups_per_sec_millions,
    gbps_at_40b
});
spc_bench::json_object!(Record { experiment, rows });

fn main() {
    let n = scale_or(4000);
    let rows: Vec<PhaseRec> = [IpAlg::Mbt, IpAlg::Bst]
        .into_iter()
        .map(|a| run(a, n))
        .collect();
    let printable: Vec<Row> = rows
        .iter()
        .map(|r| Row {
            name: r.alg.clone(),
            values: vec![
                format!("{:.1}", r.avg_phase_cycles[0]),
                format!("{:.1}", r.avg_phase_cycles[1]),
                format!("{:.1}", r.avg_phase_cycles[2]),
                format!("{:.1}", r.avg_phase_cycles[3]),
                format!("{:.1}", r.avg_latency_cycles),
                format!("{:.2}", r.avg_initiation_interval),
                format!("{:.1}", r.lookups_per_sec_millions),
                format!("{:.2}", r.gbps_at_40b),
            ],
        })
        .collect();
    print_table(
        "Fig 3 — lookup pipeline phases (avg cycles)",
        &[
            "split",
            "field lookup",
            "combine",
            "rule filter",
            "latency",
            "II",
            "Mlookup/s",
            "Gbps@40B",
        ],
        &printable,
    );
    println!("\nPaper §V.B: MBT engine phase = 6 cycles, protocol 1, port 2;");
    println!("+1 cycle label pointer, +2 cycles final phase — all pipelined in MBT mode.");
    emit_json(&Record {
        experiment: "fig3",
        rows,
    });
}
