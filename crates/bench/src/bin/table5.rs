//! Table V — synthesis result on the Stratix V device.
//!
//! Block-memory bits are measured from the architecture's memory model
//! (the paper's prototype used 2,097,184 of 54,476,800 bits ≈ 4 %); logic
//! utilisation, registers, Fmax and pins are synthesis artefacts quoted
//! from the paper (marked "quoted").

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, ruleset, scale_or};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier};

struct Record {
    experiment: &'static str,
    rules: usize,
    mem_bits_provisioned: u64,
    mem_bits_used: u64,
    mem_percent: f64,
    paper_mem_bits: u64,
}

spc_bench::json_object!(Record {
    experiment,
    rules,
    mem_bits_provisioned,
    mem_bits_used,
    mem_percent,
    paper_mem_bits
});

fn main() {
    let n = scale_or(1000);
    let rules = ruleset(FilterKind::Acl, n);
    let mut cls = Classifier::new(ArchConfig::paper_prototype());
    let loaded = match cls.load(&rules) {
        Ok(ids) => ids.len(),
        Err(e) => {
            eprintln!("note: prototype provisioning filled up after some rules ({e}); continuing");
            cls.len()
        }
    };
    let rep = cls.memory_report();
    let rr = rep.resource_report();
    println!("\n=== Table V — synthesis result (measured memory, quoted logic) ===");
    println!("{rr}");
    println!(
        "\nprovisioned architecture bits (measured): {}",
        rep.total_provisioned()
    );
    println!(
        "occupied bits at {loaded} rules:            {}",
        rep.total_used()
    );
    println!("paper: 2,097,184 / 54,476,800 bits (4%)");
    println!("\nPer-block inventory:\n{rep}");
    emit_json(&Record {
        experiment: "table5",
        rules: loaded,
        mem_bits_provisioned: rep.total_provisioned(),
        mem_bits_used: rep.total_used(),
        mem_percent: rr.mem_percent(),
        paper_mem_bits: 2_097_184,
    });
}
