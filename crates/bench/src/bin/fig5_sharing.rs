//! Fig 5 — memory sharing between the MBT level-2 block and the BST node
//! memory, and what BST mode does with the freed trie blocks.
//!
//! Sweeps the MBT leaf provisioning and reports, for each point, the
//! shared-region physical bits, what each mode occupies, and the extra
//! rule capacity BST mode gains — the mechanism behind Table VI's
//! 8K-vs-12K rule counts.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, kbits, print_table, Row};
use spc_core::{ArchConfig, Classifier, SharingReport};

struct Record {
    experiment: &'static str,
    sweep: Vec<(usize, SharingReport)>,
}

spc_bench::json_object!(Record { experiment, sweep });

fn main() {
    let mut sweep = Vec::new();
    let mut rows = Vec::new();
    for leaf_nodes in [48usize, 96, 192, 384] {
        let mut cfg = ArchConfig::paper_prototype();
        cfg.mbt_leaf_nodes = leaf_nodes;
        // Keep the BST inside the shared region at every sweep point.
        cfg.bst_max_intervals = (leaf_nodes * 16).min(1 << 14);
        let cls = Classifier::new(cfg);
        let rep = cls.sharing_report();
        rows.push(Row {
            name: format!("leaf nodes {leaf_nodes}"),
            values: vec![
                format!("{:.0}", kbits(rep.physical_bits)),
                format!("{:.0}", kbits(rep.mbt_bits)),
                format!("{:.0}", kbits(rep.bst_bits)),
                format!("{:.0}", kbits(rep.freed_bits_bst_mode)),
                format!("+{}", rep.extra_rule_capacity),
                format!("{:.0}", kbits(rep.saved_bits())),
            ],
        });
        sweep.push((leaf_nodes, rep));
    }
    print_table(
        "Fig 5 — memory sharing across the 4 IP dimensions (Kbits)",
        &[
            "physical",
            "MBT mode",
            "BST mode",
            "freed",
            "extra rules",
            "saved vs unshared",
        ],
        &rows,
    );
    let default = Classifier::new(ArchConfig::paper_prototype()).sharing_report();
    println!("\nDefault configuration:\n{default}");
    emit_json(&Record {
        experiment: "fig5",
        sweep,
    });
}
