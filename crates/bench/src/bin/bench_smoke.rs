//! CI bench-smoke: a fast, deterministic throughput comparison across
//! the engine registry's interesting configurations — the unsharded
//! inner engine against `sharded` at increasing shard counts, a
//! non-sharded backend driven through the `IngestPipeline` worker pool
//! at increasing worker counts, the same workload replayed from a pcap
//! capture (`replay:*` rows, covering the reader on every push),
//! scripted churn scenarios (`scenario:*` rows), and concurrent serving
//! under churn (`concurrent:*` rows: snapshot readers vs a mutexed
//! stop-the-world baseline, see `docs/concurrency.md`) — that also
//! cross-checks every configuration's verdicts against the linear
//! oracle before timing it (a benchmark of a wrong classifier is worse
//! than no benchmark).
//!
//! Writes the measurements as `BENCH_smoke.json` (override the path
//! with `SPC_BENCH_OUT`) so CI can upload the perf trajectory as a
//! workflow artifact, and prints the same numbers as a table. Scale
//! with `SPC_SCALE` (rule count, default 4096).
//!
//! Run: `cargo run --release -p spc-bench --bin bench_smoke`

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{print_table, ruleset, scale_or, trace, traffic, Row, ToJson};
use spc_classbench::{
    write_pcap, FilterKind, PcapReader, RuleSetGenerator, ScenarioScript, TraceGenerator,
    TraceSource,
};
use spc_engine::{
    build_engine, run_scenario, EngineBuilder, EngineSource, IngestConfig, IngestPipeline,
    PacketClassifier, Verdict,
};
use spc_types::{Header, Priority, Rule, RuleId, RuleSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// Timed repetitions per spec; the best (lowest-noise) rep is reported.
const REPS: usize = 3;
const TRACE_LEN: usize = 4096;

struct Record {
    experiment: &'static str,
    filter_kind: &'static str,
    rules: usize,
    trace_len: usize,
    reps: usize,
    rows: Vec<SpecRec>,
    scenarios: Vec<ScenarioRec>,
    cached: Vec<CachedRec>,
    concurrent: Vec<ConcurrentRec>,
    optimized: Vec<OptimizedRec>,
}

struct SpecRec {
    spec: String,
    engine: String,
    rules: usize,
    memory_kbits: f64,
    build_ms: f64,
    batch_melems_per_s: f64,
    avg_mem_reads: f64,
    hit_rate: f64,
    oracle_agrees: bool,
}

/// One scripted churn measurement: a `ScenarioScript` driven through
/// `run_scenario` on an updatable spec, oracle-checked against a linear
/// engine built over the post-churn rule set.
struct ScenarioRec {
    spec: String,
    rules: usize,
    ops: u64,
    kops_per_s: f64,
    avg_update_cycles: f64,
    oracle_agrees: bool,
}

/// One concurrent-serving measurement: a reader classifies the probe
/// trace while a background thread replays net-zero churn — a snapshot
/// reader against `snapshot:inner=(<inner>)` next to the stop-the-world
/// arrangement (the same inner behind a `Mutex`, lock per classify and
/// per update). Oracle-checked after the churn settles: net-zero churn
/// must land the reader exactly back on the base-set verdicts.
struct ConcurrentRec {
    spec: String,
    churn_ops: u64,
    melems_per_s: f64,
    locked_melems_per_s: f64,
    locked_churn_ops: u64,
    speedup: f64,
    oracle_agrees: bool,
}

/// One optimizer measurement: the semantics-preserving pass pipeline
/// (`spc-analyze`'s `optimize`, id-preserving configuration — the one
/// `optimize=validated` wires into every backend) ahead of a large
/// build. Rules elided, build memory and per-packet `mem_reads` for the
/// optimized engine next to the same backend built raw, the checker's
/// validation verdict, and an oracle check against linear over the
/// *original* set — the optimized engine answers in original id space
/// by contract, so the comparison is exact, id for id.
struct OptimizedRec {
    spec: String,
    filter_kind: &'static str,
    rules_before: usize,
    rules_removed: usize,
    optimize_ms: f64,
    raw_memory_kbits: f64,
    memory_kbits: f64,
    raw_avg_mem_reads: f64,
    avg_mem_reads: f64,
    validation: String,
    oracle_agrees: bool,
}

/// One flow-cache measurement: a `cached:*` spec on a locality-shaped
/// trace, timed next to its own *uncached* inner engine on the same
/// trace — the speedup column is the cache's whole value proposition.
struct CachedRec {
    spec: String,
    locality: f64,
    flows: usize,
    cache_hit_rate: f64,
    batch_melems_per_s: f64,
    inner_melems_per_s: f64,
    speedup: f64,
    oracle_agrees: bool,
}

spc_bench::json_object!(Record {
    experiment,
    filter_kind,
    rules,
    trace_len,
    reps,
    rows,
    scenarios,
    cached,
    concurrent,
    optimized
});
spc_bench::json_object!(OptimizedRec {
    spec,
    filter_kind,
    rules_before,
    rules_removed,
    optimize_ms,
    raw_memory_kbits,
    memory_kbits,
    raw_avg_mem_reads,
    avg_mem_reads,
    validation,
    oracle_agrees
});
spc_bench::json_object!(ConcurrentRec {
    spec,
    churn_ops,
    melems_per_s,
    locked_melems_per_s,
    locked_churn_ops,
    speedup,
    oracle_agrees
});
spc_bench::json_object!(CachedRec {
    spec,
    locality,
    flows,
    cache_hit_rate,
    batch_melems_per_s,
    inner_melems_per_s,
    speedup,
    oracle_agrees
});
spc_bench::json_object!(ScenarioRec {
    spec,
    rules,
    ops,
    kops_per_s,
    avg_update_cycles,
    oracle_agrees
});
spc_bench::json_object!(SpecRec {
    spec,
    engine,
    rules,
    memory_kbits,
    build_ms,
    batch_melems_per_s,
    avg_mem_reads,
    hit_rate,
    oracle_agrees
});

/// Verdict agreement with the oracle vector, field by field.
fn agrees(got: &[Verdict], want: &[Verdict]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(g, w)| g.rule == w.rule && g.priority == w.priority && g.action == w.action)
}

/// Drives `spec` through the scripted churn workload — bursty inserts
/// from a pool interleaved with classify batches and FIFO removes —
/// then cross-checks the post-churn engine against a linear oracle
/// built over the rules that are actually live (global ids mapped
/// through `live`).
fn scenario_row(
    spec: &str,
    script: &ScenarioScript,
    base: &RuleSet,
    pool: &[Rule],
    probe: &[Header],
) -> ScenarioRec {
    let mut engine = build_engine(spec, base).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
    assert!(engine.supports_updates(), "{spec} must be updatable");
    let mut source = script
        .source(&traffic(), base, pool)
        .expect("scenario binds")
        .with_chunk(256);
    let mut verdicts = Vec::new();
    let t0 = Instant::now();
    let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts)
        .unwrap_or_else(|e| panic!("{spec}: scenario failed: {e}"));
    let elapsed = t0.elapsed().as_secs_f64();
    let ops = report.lookup.packets
        + report.inserts
        + report.duplicates
        + report.removes
        + report.skipped_removes;

    let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
    live.extend(report.live_inserts.iter().copied());
    let final_rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let oracle = build_engine("linear", &final_rules).expect("linear always builds");
    let oracle_agrees = probe.iter().all(|h| {
        let want = oracle.classify(h);
        let got = engine.classify(h);
        got.rule == want.rule.map(|pos| live[pos.0 as usize].0)
            && got.priority == want.priority
            && got.action == want.action
    });

    ScenarioRec {
        spec: spec.to_string(),
        rules: engine.rules(),
        ops,
        kops_per_s: ops as f64 / elapsed / 1e3,
        avg_update_cycles: report.update_cycles() as f64 / report.update_ops().max(1) as f64,
        oracle_agrees,
    }
}

/// Measures classify throughput of one reader *during* sustained
/// net-zero churn (insert a foreign pool rule, remove it again, loop),
/// for the snapshot arrangement and the mutex stop-the-world baseline
/// over the same inner spec. Correctness under concurrency is proven by
/// `tests/snapshot_consistency.rs`; here the post-churn verdicts are
/// oracle-checked (net-zero churn must land back on the base set).
fn concurrent_row(
    inner: &str,
    base: &RuleSet,
    t: &[Header],
    want: &[Verdict],
    pool: &[Rule],
) -> ConcurrentRec {
    let spec = format!("snapshot:inner=({inner})");

    // Arm 1: snapshot-swap — the reader never blocks.
    let mut engine = EngineBuilder::from_spec(&spec)
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
        .build_snapshot(base)
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
    let mut reader = engine.reader();
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let mut best = f64::INFINITY;
    thread::scope(|s| {
        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                // Insert-then-remove pairs keep the churn net zero; a
                // pool rule colliding with the base set is skipped as a
                // Duplicate, identically for both arms.
                if let Ok(id) = engine.insert(pool[i % pool.len()]) {
                    engine.remove(id).expect("just inserted");
                    ops.fetch_add(2, Ordering::Relaxed);
                }
                i += 1;
                thread::yield_now();
            }
        });
        for rep in 0..=REPS {
            let t1 = Instant::now();
            let mut hits = 0u64;
            for h in t {
                hits += u64::from(reader.classify(h).rule.is_some());
            }
            std::hint::black_box(hits);
            if rep > 0 {
                best = best.min(t1.elapsed().as_secs_f64());
            }
        }
        stop.store(true, Ordering::Release);
    });
    let melems = t.len() as f64 / best / 1e6;
    let out: Vec<Verdict> = t.iter().map(|h| reader.classify(h)).collect();
    let mut oracle_agrees = agrees(&out, want);

    // Arm 2: the same inner behind a mutex — lock per classify and per
    // update, so the reader stops for every §V.A op the writer runs.
    let locked: Mutex<Box<dyn PacketClassifier>> =
        Mutex::new(build_engine(inner, base).unwrap_or_else(|e| panic!("{inner} must build: {e}")));
    let locked_stop = AtomicBool::new(false);
    let locked_ops = AtomicU64::new(0);
    let mut locked_best = f64::INFINITY;
    thread::scope(|s| {
        s.spawn(|| {
            let mut i = 0usize;
            while !locked_stop.load(Ordering::Acquire) {
                let inserted = locked.lock().unwrap().insert(pool[i % pool.len()]);
                if let Ok(id) = inserted {
                    locked.lock().unwrap().remove(id).expect("just inserted");
                    locked_ops.fetch_add(2, Ordering::Relaxed);
                }
                i += 1;
                thread::yield_now();
            }
        });
        for rep in 0..=REPS {
            let t1 = Instant::now();
            let mut hits = 0u64;
            for h in t {
                hits += u64::from(locked.lock().unwrap().classify(h).rule.is_some());
            }
            std::hint::black_box(hits);
            if rep > 0 {
                locked_best = locked_best.min(t1.elapsed().as_secs_f64());
            }
        }
        locked_stop.store(true, Ordering::Release);
    });
    let locked_melems = t.len() as f64 / locked_best / 1e6;
    let locked_out: Vec<Verdict> = {
        let guard = locked.lock().unwrap();
        t.iter().map(|h| guard.classify(h)).collect()
    };
    oracle_agrees &= agrees(&locked_out, want);

    ConcurrentRec {
        spec,
        churn_ops: ops.into_inner(),
        melems_per_s: melems,
        locked_melems_per_s: locked_melems,
        locked_churn_ops: locked_ops.into_inner(),
        speedup: melems / locked_melems,
        oracle_agrees,
    }
}

fn main() {
    let n = scale_or(4096);
    let rules = ruleset(FilterKind::Acl, n);
    let t = trace(&rules, TRACE_LEN);
    eprintln!("bench_smoke: {} rules, {} headers", rules.len(), t.len());

    let oracle = build_engine("linear", &rules).expect("linear always builds");
    let want: Vec<Verdict> = t.iter().map(|h| oracle.classify(h)).collect();

    let specs = [
        "linear".to_string(),
        "configurable-bst".to_string(),
        // The update-first backends, next to the architecture they frame.
        "tss".to_string(),
        "tcam".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=4,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=linear,shards=8,strategy=prio".to_string(),
    ];

    let mut rows = Vec::new();
    let mut recs = Vec::new();
    let mut all_agree = true;
    for spec in &specs {
        let t0 = Instant::now();
        let mut engine =
            build_engine(spec, &rules).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut stats = engine.classify_batch(&t, &mut out);
        let oracle_agrees = agrees(&out, &want);
        all_agree &= oracle_agrees;

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = engine.classify_batch(&t, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = t.len() as f64 / best / 1e6;

        rows.push(Row {
            name: spec.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                format!("{:.0}", engine.memory_bits() as f64 / 1e3),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec: spec.clone(),
            engine: engine.name().to_string(),
            rules: engine.rules(),
            memory_kbits: engine.memory_bits() as f64 / 1e3,
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }

    // The same trace through the generalised ingest pipeline: one
    // non-sharded backend, replicated per worker — scaling with worker
    // count lands in the artifact next to the sharded numbers.
    const INGEST_SPEC: &str = "configurable-bst";
    let builder = EngineBuilder::from_spec(INGEST_SPEC).expect("valid ingest spec");
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let source =
            EngineSource::replicated(&builder, &rules, workers).expect("replicas must build");
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers,
                queue_chunks: 2 * workers,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut stats = pipe.run_batch(&t, &mut out);
        let oracle_agrees = agrees(&out, &want);
        all_agree &= oracle_agrees;

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = pipe.run_batch(&t, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = t.len() as f64 / best / 1e6;

        let spec = format!("ingest:{INGEST_SPEC},workers={workers}");
        rows.push(Row {
            name: spec.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                "-".to_string(),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec,
            engine: format!("IngestPipeline({INGEST_SPEC} x{workers})"),
            rules: rules.len(),
            memory_kbits: 0.0, // replicas share nothing; memory is workers x backend
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }

    // Pcap replay: write the evaluation trace as a temporary capture,
    // read it back (round-trip checked bit for bit), classify the
    // replayed workload (`replay:<spec>`), and stream the capture
    // straight into the ingest pipeline (`replay:ingest,...`) — so the
    // reader and the `run_source` path are exercised on every CI push.
    let pcap_path =
        std::env::temp_dir().join(format!("spc_bench_smoke_{}.pcap", std::process::id()));
    write_pcap(&pcap_path, t.iter().copied()).expect("write temp pcap");
    let replayed = PcapReader::open(&pcap_path)
        .expect("reopen temp pcap")
        .collect_headers()
        .expect("well-formed capture");
    assert_eq!(replayed, t, "pcap round-trip must reproduce the trace");
    for spec in ["linear", "configurable-bst"] {
        let t0 = Instant::now();
        let mut engine =
            build_engine(spec, &rules).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut out = Vec::new();
        let mut stats = engine.classify_batch(&replayed, &mut out);
        let oracle_agrees = agrees(&out, &want);
        all_agree &= oracle_agrees;
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = engine.classify_batch(&replayed, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = replayed.len() as f64 / best / 1e6;
        let name = format!("replay:{spec}");
        rows.push(Row {
            name: name.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                format!("{:.0}", engine.memory_bits() as f64 / 1e3),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec: name,
            engine: engine.name().to_string(),
            rules: engine.rules(),
            memory_kbits: engine.memory_bits() as f64 / 1e3,
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }
    {
        // Streaming replay: a fresh reader per rep, so the measured
        // number includes pcap parsing — captured traffic to verdicts.
        const WORKERS: usize = 2;
        let t0 = Instant::now();
        let source = EngineSource::replicated(&builder, &rules, WORKERS).expect("replicas build");
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: WORKERS,
                queue_chunks: 2 * WORKERS,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut out = Vec::new();
        let mut stats = spc_engine::LookupStats::default();
        let mut best = f64::INFINITY;
        for rep in 0..=REPS {
            let mut reader = PcapReader::open(&pcap_path).expect("reopen temp pcap");
            let t1 = Instant::now();
            stats = pipe
                .run_source(&mut reader, &mut out)
                .expect("classify-only capture");
            if rep > 0 {
                best = best.min(t1.elapsed().as_secs_f64());
            }
        }
        let oracle_agrees = agrees(&out, &want);
        all_agree &= oracle_agrees;
        let melems = t.len() as f64 / best / 1e6;
        let name = format!("replay:ingest:{INGEST_SPEC},workers={WORKERS}");
        rows.push(Row {
            name: name.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                "-".to_string(),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec: name,
            engine: format!("PcapReader -> IngestPipeline({INGEST_SPEC} x{WORKERS})"),
            rules: rules.len(),
            memory_kbits: 0.0,
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }
    let _ = std::fs::remove_file(&pcap_path);

    // Flow cache: `cached:*` over a dedicated 8k-rule ACL set, swept
    // across flow-locality x cache size, each row timed against its own
    // *uncached* inner engine on the identical trace and oracle-checked
    // against linear. Hit rate and speedup land in the artifact so the
    // cache's perf trajectory is tracked per push.
    const CACHE_INNER: &str = "configurable-bst";
    let cache_rules = ruleset(FilterKind::Acl, scale_or(8192));
    let cache_oracle = build_engine("linear", &cache_rules).expect("linear always builds");
    let mut cached_rows = Vec::new();
    let mut cached_recs = Vec::new();
    for locality in [0.5, 0.9, 0.99] {
        let ctrace = TraceGenerator::new()
            .seed(spc_bench::SEED_TRACE)
            .match_fraction(0.9)
            .locality(locality)
            .generate(&cache_rules, TRACE_LEN);
        let cwant: Vec<Verdict> = ctrace.iter().map(|h| cache_oracle.classify(h)).collect();

        let mut inner = build_engine(CACHE_INNER, &cache_rules).expect("inner must build");
        let mut out = Vec::new();
        inner.classify_batch(&ctrace, &mut out);
        let mut inner_best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            inner.classify_batch(&ctrace, &mut out);
            inner_best = inner_best.min(t1.elapsed().as_secs_f64());
        }
        let inner_melems = ctrace.len() as f64 / inner_best / 1e6;

        for flows in [1024usize, 8192] {
            let spec = format!("cached:inner={CACHE_INNER},flows={flows}");
            let mut engine =
                build_engine(&spec, &cache_rules).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let mut stats = engine.classify_batch(&ctrace, &mut out);
            let oracle_agrees = agrees(&out, &cwant);
            all_agree &= oracle_agrees;
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let t1 = Instant::now();
                stats = engine.classify_batch(&ctrace, &mut out);
                best = best.min(t1.elapsed().as_secs_f64());
            }
            let melems = ctrace.len() as f64 / best / 1e6;
            let rec = CachedRec {
                spec: spec.clone(),
                locality,
                flows,
                cache_hit_rate: stats.cache_hit_rate(),
                batch_melems_per_s: melems,
                inner_melems_per_s: inner_melems,
                speedup: melems / inner_melems,
                oracle_agrees,
            };
            cached_rows.push(Row {
                name: format!("{spec} @ loc={locality}"),
                values: vec![
                    format!("{melems:.2}"),
                    format!("{inner_melems:.2}"),
                    format!("{:.2}x", rec.speedup),
                    format!("{:.3}", rec.cache_hit_rate),
                    if oracle_agrees { "yes" } else { "NO" }.to_string(),
                ],
            });
            cached_recs.push(rec);
        }
    }

    // Optimizer: the semantics-preserving pass pipeline ahead of a
    // large build, per ClassBench family. The raw backend and
    // `optimize=validated` over the same original set classify the same
    // trace; both verdict vectors are checked against the linear oracle
    // over the ORIGINAL set — the optimized engine must answer in
    // original id space, so the oracle comparison is exact, id for id.
    const OPT_INNER: &str = "configurable-bst";
    let mut optimized_rows = Vec::new();
    let mut optimized_recs = Vec::new();
    for (fk, fk_name) in [
        (FilterKind::Acl, "acl"),
        (FilterKind::Fw, "fw"),
        (FilterKind::Ipc, "ipc"),
    ] {
        let orules = ruleset(fk, scale_or(8192));
        let otrace = trace(&orules, TRACE_LEN);
        let ooracle = build_engine("linear", &orules).expect("linear always builds");
        let owant: Vec<Verdict> = otrace.iter().map(|h| ooracle.classify(h)).collect();

        // The pass pipeline itself, timed: the id-preserving
        // configuration is exactly what `optimize=validated` runs.
        let t0 = Instant::now();
        let opt = spc_analyze::optimize(&orules, &spc_analyze::OptimizeConfig::id_preserving())
            .unwrap_or_else(|e| panic!("optimizer must validate on {fk_name}: {e}"));
        let optimize_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut raw =
            build_engine(OPT_INNER, &orules).unwrap_or_else(|e| panic!("{OPT_INNER}: {e}"));
        let raw_stats = raw.classify_batch(&otrace, &mut out);
        all_agree &= agrees(&out, &owant);
        let raw_memory_kbits = raw.memory_bits() as f64 / 1e3;

        let spec = format!("{OPT_INNER}:optimize=validated");
        let mut engine = build_engine(&spec, &orules).unwrap_or_else(|e| panic!("{spec}: {e}"));
        let stats = engine.classify_batch(&otrace, &mut out);
        let oracle_agrees = agrees(&out, &owant);
        all_agree &= oracle_agrees;

        let rec = OptimizedRec {
            spec: spec.clone(),
            filter_kind: fk_name,
            rules_before: orules.len(),
            rules_removed: opt.removed_rules(),
            optimize_ms,
            raw_memory_kbits,
            memory_kbits: engine.memory_bits() as f64 / 1e3,
            raw_avg_mem_reads: raw_stats.avg_mem_reads(),
            avg_mem_reads: stats.avg_mem_reads(),
            validation: opt.validation.to_string(),
            oracle_agrees,
        };
        optimized_rows.push(Row {
            name: format!("optimized:{fk_name}:{spec}"),
            values: vec![
                format!("{}", rec.rules_removed),
                format!("{optimize_ms:.0}"),
                format!("{:.0} -> {:.0}", rec.raw_memory_kbits, rec.memory_kbits),
                format!("{:.2} -> {:.2}", rec.raw_avg_mem_reads, rec.avg_mem_reads),
                if rec.oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        optimized_recs.push(rec);
    }

    // Scripted churn: the §V.A fast-update path as a ScenarioScript —
    // insert bursts from a foreign pool, classify batches, FIFO
    // removes — sharded at {1, 2, 8} shards (both strategies) against
    // the unsharded configurable inner, every row oracle-checked over
    // its post-churn rule set.
    let churn_pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, 192)
        .seed(spc_bench::SEED_RULES ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            // Fresh priorities past the base set keep the workload
            // identical for every spec (and exercise band appends).
            r.priority = Priority(1_000_000 + i as u32);
            r
        })
        .collect();
    let script = ScenarioScript::parse(
        "repeat 24 { insert 8; classify 128; remove 4 }", // 192 inserts, half survive
    )
    .expect("valid churn script");
    let scenario_specs = [
        "configurable-bst".to_string(),
        "sharded:inner=configurable-bst,shards=1,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
        // Update-first backends under the same scripted churn, so the
        // §V.A numbers sit next to a TSS and a TCAM in the artifact.
        "tss".to_string(),
        "tcam".to_string(),
        "sharded:inner=tss,shards=2,strategy=prio".to_string(),
    ];
    let mut scenario_rows = Vec::new();
    let mut scenario_recs = Vec::new();
    for spec in &scenario_specs {
        let rec = scenario_row(spec, &script, &rules, &churn_pool, &t);
        all_agree &= rec.oracle_agrees;
        scenario_rows.push(Row {
            name: format!("scenario:{spec}"),
            values: vec![
                format!("{:.1}", rec.kops_per_s),
                format!("{:.1}", rec.avg_update_cycles),
                format!("{}", rec.rules),
                if rec.oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        scenario_recs.push(rec);
    }

    // Concurrent serving: one reader's classify throughput *during*
    // net-zero churn — snapshot readers (never block) vs the same inner
    // behind a mutex (stop-the-world). The concurrency-oracle tier
    // (tests/snapshot_consistency.rs) proves the correctness side; these
    // rows track the throughput side per push. On a single-core runner
    // both arms pay the churn thread's CPU, so the speedup column is
    // informative, not asserted.
    let mut concurrent_rows = Vec::new();
    let mut concurrent_recs = Vec::new();
    for inner in [
        "configurable-bst",
        "sharded:inner=configurable-bst,shards=4,strategy=prio",
    ] {
        let rec = concurrent_row(inner, &rules, &t, &want, &churn_pool);
        all_agree &= rec.oracle_agrees;
        concurrent_rows.push(Row {
            name: format!("concurrent:{}", rec.spec),
            values: vec![
                format!("{:.2}", rec.melems_per_s),
                format!("{:.2}", rec.locked_melems_per_s),
                format!("{:.2}x", rec.speedup),
                format!("{}", rec.churn_ops),
                format!("{}", rec.locked_churn_ops),
                if rec.oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        concurrent_recs.push(rec);
    }

    print_table(
        &format!(
            "bench-smoke (acl, {} rules, batch {})",
            rules.len(),
            t.len()
        ),
        &["Melem/s", "avg reads", "mem Kb", "build ms", "oracle"],
        &rows,
    );
    print_table(
        &format!(
            "flow cache (acl, {} rules, batch {}, locality sweep, warm cache)",
            cache_rules.len(),
            TRACE_LEN
        ),
        &["Melem/s", "inner Melem/s", "speedup", "hit rate", "oracle"],
        &cached_rows,
    );
    print_table(
        &format!(
            "optimizer (id-preserving passes, {} rules/family, batch {})",
            scale_or(8192),
            TRACE_LEN
        ),
        &["removed", "opt ms", "mem Kb", "avg reads", "oracle"],
        &optimized_rows,
    );
    print_table(
        &format!(
            "scenario churn (acl base {}, fw pool {}, script: {} classifies / {} inserts / {} removes)",
            rules.len(),
            churn_pool.len(),
            script.total_headers(),
            script.total_inserts(),
            script.total_removes(),
        ),
        &["Kops/s", "avg cycles", "rules after", "oracle"],
        &scenario_rows,
    );
    print_table(
        &format!(
            "concurrent serving (acl, {} rules, probe batch {}, net-zero churn in background)",
            rules.len(),
            t.len()
        ),
        &[
            "Melem/s",
            "mutex Melem/s",
            "speedup",
            "churn ops",
            "mutex ops",
            "oracle",
        ],
        &concurrent_rows,
    );

    let record = Record {
        experiment: "bench_smoke",
        filter_kind: "acl",
        rules: rules.len(),
        trace_len: t.len(),
        reps: REPS,
        rows: recs,
        scenarios: scenario_recs,
        cached: cached_recs,
        concurrent: concurrent_recs,
        optimized: optimized_recs,
    };
    let path = std::env::var("SPC_BENCH_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    std::fs::write(&path, record.to_json().pretty() + "\n").expect("write bench record");
    eprintln!("wrote {path}");

    assert!(all_agree, "a backend disagreed with the linear oracle");
}
