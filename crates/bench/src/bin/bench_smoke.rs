//! CI bench-smoke: a fast, deterministic throughput comparison across
//! the engine registry's interesting configurations — the unsharded
//! inner engine against `sharded` at increasing shard counts, and a
//! non-sharded backend driven through the `IngestPipeline` worker pool
//! at increasing worker counts — that also cross-checks every
//! configuration's verdicts against the linear oracle before timing it
//! (a benchmark of a wrong classifier is worse than no benchmark).
//!
//! Writes the measurements as `BENCH_smoke.json` (override the path
//! with `SPC_BENCH_OUT`) so CI can upload the perf trajectory as a
//! workflow artifact, and prints the same numbers as a table. Scale
//! with `SPC_SCALE` (rule count, default 4096).
//!
//! Run: `cargo run --release -p spc-bench --bin bench_smoke`

use spc_bench::{print_table, ruleset, scale_or, trace, Row, ToJson};
use spc_classbench::FilterKind;
use spc_engine::{
    build_engine, EngineBuilder, EngineSource, IngestConfig, IngestPipeline, Verdict,
};
use std::time::Instant;

/// Timed repetitions per spec; the best (lowest-noise) rep is reported.
const REPS: usize = 3;
const TRACE_LEN: usize = 4096;

struct Record {
    experiment: &'static str,
    filter_kind: &'static str,
    rules: usize,
    trace_len: usize,
    reps: usize,
    rows: Vec<SpecRec>,
}

struct SpecRec {
    spec: String,
    engine: String,
    rules: usize,
    memory_kbits: f64,
    build_ms: f64,
    batch_melems_per_s: f64,
    avg_mem_reads: f64,
    hit_rate: f64,
    oracle_agrees: bool,
}

spc_bench::json_object!(Record {
    experiment,
    filter_kind,
    rules,
    trace_len,
    reps,
    rows
});
spc_bench::json_object!(SpecRec {
    spec,
    engine,
    rules,
    memory_kbits,
    build_ms,
    batch_melems_per_s,
    avg_mem_reads,
    hit_rate,
    oracle_agrees
});

fn main() {
    let n = scale_or(4096);
    let rules = ruleset(FilterKind::Acl, n);
    let t = trace(&rules, TRACE_LEN);
    eprintln!("bench_smoke: {} rules, {} headers", rules.len(), t.len());

    let oracle = build_engine("linear", &rules).expect("linear always builds");
    let want: Vec<Verdict> = t.iter().map(|h| oracle.classify(h)).collect();

    let specs = [
        "linear".to_string(),
        "configurable-bst".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=4,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=linear,shards=8,strategy=prio".to_string(),
    ];

    let mut rows = Vec::new();
    let mut recs = Vec::new();
    let mut all_agree = true;
    for spec in &specs {
        let t0 = Instant::now();
        let mut engine =
            build_engine(spec, &rules).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut stats = engine.classify_batch(&t, &mut out);
        let oracle_agrees = out
            .iter()
            .zip(&want)
            .all(|(g, w)| g.rule == w.rule && g.priority == w.priority && g.action == w.action);
        all_agree &= oracle_agrees;

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = engine.classify_batch(&t, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = t.len() as f64 / best / 1e6;

        rows.push(Row {
            name: spec.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                format!("{:.0}", engine.memory_bits() as f64 / 1e3),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec: spec.clone(),
            engine: engine.name().to_string(),
            rules: engine.rules(),
            memory_kbits: engine.memory_bits() as f64 / 1e3,
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }

    // The same trace through the generalised ingest pipeline: one
    // non-sharded backend, replicated per worker — scaling with worker
    // count is this PR's acceptance measurement, so it lands in the
    // artifact next to the sharded numbers.
    const INGEST_SPEC: &str = "configurable-bst";
    let builder = EngineBuilder::from_spec(INGEST_SPEC).expect("valid ingest spec");
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let source =
            EngineSource::replicated(&builder, &rules, workers).expect("replicas must build");
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers,
                queue_chunks: 2 * workers,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut stats = pipe.run_batch(&t, &mut out);
        let oracle_agrees = out
            .iter()
            .zip(&want)
            .all(|(g, w)| g.rule == w.rule && g.priority == w.priority && g.action == w.action);
        all_agree &= oracle_agrees;

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = pipe.run_batch(&t, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = t.len() as f64 / best / 1e6;

        let spec = format!("ingest:{INGEST_SPEC},workers={workers}");
        rows.push(Row {
            name: spec.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                "-".to_string(),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec,
            engine: format!("IngestPipeline({INGEST_SPEC} x{workers})"),
            rules: rules.len(),
            memory_kbits: 0.0, // replicas share nothing; memory is workers x backend
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }

    print_table(
        &format!(
            "bench-smoke (acl, {} rules, batch {})",
            rules.len(),
            t.len()
        ),
        &["Melem/s", "avg reads", "mem Kb", "build ms", "oracle"],
        &rows,
    );

    let record = Record {
        experiment: "bench_smoke",
        filter_kind: "acl",
        rules: rules.len(),
        trace_len: t.len(),
        reps: REPS,
        rows: recs,
    };
    let path = std::env::var("SPC_BENCH_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    std::fs::write(&path, record.to_json().pretty() + "\n").expect("write bench record");
    eprintln!("wrote {path}");

    assert!(all_agree, "a backend disagreed with the linear oracle");
}
