//! CI bench-smoke: a fast, deterministic throughput comparison across
//! the engine registry's interesting configurations — the unsharded
//! inner engine against `sharded` at increasing shard counts, and a
//! non-sharded backend driven through the `IngestPipeline` worker pool
//! at increasing worker counts — that also cross-checks every
//! configuration's verdicts against the linear oracle before timing it
//! (a benchmark of a wrong classifier is worse than no benchmark).
//!
//! Writes the measurements as `BENCH_smoke.json` (override the path
//! with `SPC_BENCH_OUT`) so CI can upload the perf trajectory as a
//! workflow artifact, and prints the same numbers as a table. Scale
//! with `SPC_SCALE` (rule count, default 4096).
//!
//! Run: `cargo run --release -p spc-bench --bin bench_smoke`

use spc_bench::{print_table, ruleset, scale_or, trace, Row, ToJson};
use spc_classbench::{FilterKind, RuleSetGenerator};
use spc_engine::{
    build_engine, EngineBuilder, EngineSource, IngestConfig, IngestPipeline, UpdateError, Verdict,
};
use spc_types::{Header, Priority, Rule, RuleId, RuleSet};
use std::time::Instant;

/// Timed repetitions per spec; the best (lowest-noise) rep is reported.
const REPS: usize = 3;
const TRACE_LEN: usize = 4096;

struct Record {
    experiment: &'static str,
    filter_kind: &'static str,
    rules: usize,
    trace_len: usize,
    reps: usize,
    rows: Vec<SpecRec>,
    update_churn: Vec<ChurnRec>,
}

struct SpecRec {
    spec: String,
    engine: String,
    rules: usize,
    memory_kbits: f64,
    build_ms: f64,
    batch_melems_per_s: f64,
    avg_mem_reads: f64,
    hit_rate: f64,
    oracle_agrees: bool,
}

/// One update-churn measurement: interleaved insert/remove/classify on
/// an updatable spec, oracle-checked against a linear engine built over
/// the post-churn rule set.
struct ChurnRec {
    spec: String,
    rules: usize,
    ops: usize,
    churn_kops_per_s: f64,
    avg_update_cycles: f64,
    oracle_agrees: bool,
}

spc_bench::json_object!(Record {
    experiment,
    filter_kind,
    rules,
    trace_len,
    reps,
    rows,
    update_churn
});
spc_bench::json_object!(ChurnRec {
    spec,
    rules,
    ops,
    churn_kops_per_s,
    avg_update_cycles,
    oracle_agrees
});
spc_bench::json_object!(SpecRec {
    spec,
    engine,
    rules,
    memory_kbits,
    build_ms,
    batch_melems_per_s,
    avg_mem_reads,
    hit_rate,
    oracle_agrees
});

/// Drives `spec` through a deterministic churn workload — insert one
/// pool rule, every second step remove the oldest surviving insert,
/// classify one trace header after every update — then cross-checks the
/// post-churn engine against a linear oracle built over the rules that
/// are actually live (global ids mapped through insertion order).
fn churn_row(spec: &str, base: &RuleSet, pool: &[Rule], headers: &[Header]) -> ChurnRec {
    let mut engine = build_engine(spec, base).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
    assert!(engine.supports_updates(), "{spec} must be updatable");
    let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
    let mut inserted: Vec<RuleId> = Vec::new();
    let (mut ops, mut update_ops, mut cycles) = (0usize, 0usize, 0u64);
    let t0 = Instant::now();
    for (i, rule) in pool.iter().enumerate() {
        match engine.insert(*rule) {
            Ok(id) => {
                cycles += engine
                    .last_update_report()
                    .expect("insert must report")
                    .hw_write_cycles;
                update_ops += 1;
                live.push((id, *rule));
                inserted.push(id);
            }
            Err(UpdateError::Duplicate { .. }) => {}
            Err(e) => panic!("{spec}: churn insert rejected: {e}"),
        }
        ops += 1;
        if i % 2 == 1 {
            if let Some(id) = inserted.first().copied() {
                inserted.remove(0);
                engine
                    .remove(id)
                    .unwrap_or_else(|e| panic!("{spec}: churn remove {id}: {e}"));
                cycles += engine
                    .last_update_report()
                    .expect("remove must report")
                    .hw_write_cycles;
                update_ops += 1;
                ops += 1;
                live.retain(|&(g, _)| g != id);
            }
        }
        engine.classify(&headers[i % headers.len()]);
        ops += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let final_rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let oracle = build_engine("linear", &final_rules).expect("linear always builds");
    let oracle_agrees = headers.iter().all(|h| {
        let want = oracle.classify(h);
        let got = engine.classify(h);
        got.rule == want.rule.map(|pos| live[pos.0 as usize].0)
            && got.priority == want.priority
            && got.action == want.action
    });

    ChurnRec {
        spec: spec.to_string(),
        rules: engine.rules(),
        ops,
        churn_kops_per_s: ops as f64 / elapsed / 1e3,
        avg_update_cycles: cycles as f64 / update_ops.max(1) as f64,
        oracle_agrees,
    }
}

fn main() {
    let n = scale_or(4096);
    let rules = ruleset(FilterKind::Acl, n);
    let t = trace(&rules, TRACE_LEN);
    eprintln!("bench_smoke: {} rules, {} headers", rules.len(), t.len());

    let oracle = build_engine("linear", &rules).expect("linear always builds");
    let want: Vec<Verdict> = t.iter().map(|h| oracle.classify(h)).collect();

    let specs = [
        "linear".to_string(),
        "configurable-bst".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=4,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=linear,shards=8,strategy=prio".to_string(),
    ];

    let mut rows = Vec::new();
    let mut recs = Vec::new();
    let mut all_agree = true;
    for spec in &specs {
        let t0 = Instant::now();
        let mut engine =
            build_engine(spec, &rules).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut stats = engine.classify_batch(&t, &mut out);
        let oracle_agrees = out
            .iter()
            .zip(&want)
            .all(|(g, w)| g.rule == w.rule && g.priority == w.priority && g.action == w.action);
        all_agree &= oracle_agrees;

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = engine.classify_batch(&t, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = t.len() as f64 / best / 1e6;

        rows.push(Row {
            name: spec.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                format!("{:.0}", engine.memory_bits() as f64 / 1e3),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec: spec.clone(),
            engine: engine.name().to_string(),
            rules: engine.rules(),
            memory_kbits: engine.memory_bits() as f64 / 1e3,
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }

    // The same trace through the generalised ingest pipeline: one
    // non-sharded backend, replicated per worker — scaling with worker
    // count is this PR's acceptance measurement, so it lands in the
    // artifact next to the sharded numbers.
    const INGEST_SPEC: &str = "configurable-bst";
    let builder = EngineBuilder::from_spec(INGEST_SPEC).expect("valid ingest spec");
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let source =
            EngineSource::replicated(&builder, &rules, workers).expect("replicas must build");
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers,
                queue_chunks: 2 * workers,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut out = Vec::new();
        let mut stats = pipe.run_batch(&t, &mut out);
        let oracle_agrees = out
            .iter()
            .zip(&want)
            .all(|(g, w)| g.rule == w.rule && g.priority == w.priority && g.action == w.action);
        all_agree &= oracle_agrees;

        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t1 = Instant::now();
            stats = pipe.run_batch(&t, &mut out);
            best = best.min(t1.elapsed().as_secs_f64());
        }
        let melems = t.len() as f64 / best / 1e6;

        let spec = format!("ingest:{INGEST_SPEC},workers={workers}");
        rows.push(Row {
            name: spec.clone(),
            values: vec![
                format!("{melems:.2}"),
                format!("{:.2}", stats.avg_mem_reads()),
                "-".to_string(),
                format!("{build_ms:.0}"),
                if oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        recs.push(SpecRec {
            spec,
            engine: format!("IngestPipeline({INGEST_SPEC} x{workers})"),
            rules: rules.len(),
            memory_kbits: 0.0, // replicas share nothing; memory is workers x backend
            build_ms,
            batch_melems_per_s: melems,
            avg_mem_reads: stats.avg_mem_reads(),
            hit_rate: stats.hit_rate(),
            oracle_agrees,
        });
    }

    // Update churn: the §V.A fast-update path under sharding —
    // interleaved insert/remove/classify, sharded at {1, 2, 8} shards
    // (both strategies) against the unsharded configurable inner, every
    // row oracle-checked over its post-churn rule set.
    let churn_pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, 192)
        .seed(spc_bench::SEED_RULES ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            // Fresh priorities past the base set keep the workload
            // identical for every spec (and exercise band appends).
            r.priority = Priority(1_000_000 + i as u32);
            r
        })
        .collect();
    let churn_specs = [
        "configurable-bst".to_string(),
        "sharded:inner=configurable-bst,shards=1,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
    ];
    let mut churn_rows = Vec::new();
    let mut churn_recs = Vec::new();
    for spec in &churn_specs {
        let rec = churn_row(spec, &rules, &churn_pool, &t);
        all_agree &= rec.oracle_agrees;
        churn_rows.push(Row {
            name: format!("update_churn:{spec}"),
            values: vec![
                format!("{:.1}", rec.churn_kops_per_s),
                format!("{:.1}", rec.avg_update_cycles),
                format!("{}", rec.rules),
                if rec.oracle_agrees { "yes" } else { "NO" }.to_string(),
            ],
        });
        churn_recs.push(rec);
    }

    print_table(
        &format!(
            "bench-smoke (acl, {} rules, batch {})",
            rules.len(),
            t.len()
        ),
        &["Melem/s", "avg reads", "mem Kb", "build ms", "oracle"],
        &rows,
    );
    print_table(
        &format!("update-churn (acl base {}, fw pool {})", rules.len(), 192),
        &["Kops/s", "avg cycles", "rules after", "oracle"],
        &churn_rows,
    );

    let record = Record {
        experiment: "bench_smoke",
        filter_kind: "acl",
        rules: rules.len(),
        trace_len: t.len(),
        reps: REPS,
        rows: recs,
        update_churn: churn_recs,
    };
    let path = std::env::var("SPC_BENCH_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    std::fs::write(&path, record.to_json().pretty() + "\n").expect("write bench record");
    eprintln!("wrote {path}");

    assert!(all_agree, "a backend disagreed with the linear oracle");
}
