//! Table I — performance evaluation of algorithms based on different
//! lookup approaches: average lookup memory accesses and memory space.
//!
//! Paper values (acl-class filter set):
//! HyperCuts 60.05 / 5.96 Mb; RFC 48 / 31.48 Mb; DCFL 23.1 / 22.54 Mb;
//! Option 1 49.3 / 5.57 Mb; Option 2 31.33 / 6.36 Mb.
//!
//! Run: `cargo run --release -p spc-bench --bin table1` (set `SPC_SCALE`
//! to change the rule count; default 5000).

use serde::Serialize;
use spc_baselines::{
    Baseline, Dcfl, HyperCuts, HyperCutsConfig, OptionClassifier, OptionKind, Rfc,
};
use spc_bench::{emit_json, mbits, print_table, ruleset, scale_or, trace, Row};
use spc_classbench::FilterKind;

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    rules: usize,
    rows: Vec<RowRec>,
}

#[derive(Serialize)]
struct RowRec {
    algorithm: String,
    avg_accesses: f64,
    worst_accesses: u32,
    memory_mbits: f64,
    paper_accesses: f64,
    paper_memory_mbits: f64,
}

fn main() {
    let n = scale_or(5000);
    let rules = ruleset(FilterKind::Acl, n);
    let t = trace(&rules, 2000);
    eprintln!("building classifiers over {} rules...", rules.len());

    let paper: &[(&str, f64, f64)] = &[
        ("HyperCuts", 60.05, 5.96),
        ("RFC", 48.0, 31.48),
        ("DCFL", 23.1, 22.54),
        ("Option 1", 49.3, 5.57),
        ("Option 2", 31.33, 6.36),
    ];

    let classifiers: Vec<Box<dyn Baseline>> = vec![
        Box::new(HyperCuts::build(&rules, HyperCutsConfig::default())),
        Box::new(Rfc::build(&rules, 1 << 27).expect("rfc tables within cap at this scale")),
        Box::new(Dcfl::build(&rules)),
        Box::new(OptionClassifier::build(&rules, OptionKind::One)),
        Box::new(OptionClassifier::build(&rules, OptionKind::Two)),
    ];

    let mut rows = Vec::new();
    let mut recs = Vec::new();
    for c in &classifiers {
        let acc = c.avg_accesses(&t);
        let worst = t.iter().map(|h| c.classify(h).accesses).max().unwrap_or(0);
        let mem = mbits(c.memory_bits());
        let (_, pacc, pmem) =
            paper.iter().find(|(name, _, _)| *name == c.name()).expect("known algorithm");
        rows.push(Row {
            name: c.name().to_string(),
            values: vec![
                format!("{acc:.2}"),
                format!("{worst}"),
                format!("{mem:.2}"),
                format!("{pacc:.2}"),
                format!("{pmem:.2}"),
            ],
        });
        recs.push(RowRec {
            algorithm: c.name().to_string(),
            avg_accesses: acc,
            worst_accesses: worst,
            memory_mbits: mem,
            paper_accesses: *pacc,
            paper_memory_mbits: *pmem,
        });
    }
    print_table(
        &format!("Table I — lookup approaches (acl1, {} rules)", rules.len()),
        &["avg acc", "worst acc", "memory Mb", "paper acc", "paper Mb"],
        &rows,
    );
    emit_json(&Record { experiment: "table1", rules: rules.len(), rows: recs });
}
