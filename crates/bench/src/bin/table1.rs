//! Table I — performance evaluation of algorithms based on different
//! lookup approaches: average lookup memory accesses and memory space.
//!
//! Paper values (acl-class filter set):
//! HyperCuts 60.05 / 5.96 Mb; RFC 48 / 31.48 Mb; DCFL 23.1 / 22.54 Mb;
//! Option 1 49.3 / 5.57 Mb; Option 2 31.33 / 6.36 Mb.
//!
//! Every backend is built and measured through the unified
//! `spc_engine::PacketClassifier` API — one loop over the registry, no
//! per-algorithm glue. Rows without paper values (the linear oracle and
//! the configurable architecture, which Table VI covers) print `-`.
//!
//! Run: `cargo run --release -p spc-bench --bin table1` (set `SPC_SCALE`
//! to change the rule count; default 5000).

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, mbits, print_table, ruleset, scale_or, trace, Row};
use spc_classbench::FilterKind;
use spc_engine::{EngineBuilder, EngineKind};

struct Record {
    experiment: &'static str,
    rules: usize,
    rows: Vec<RowRec>,
}

struct RowRec {
    algorithm: String,
    avg_accesses: f64,
    worst_accesses: u32,
    memory_mbits: f64,
    paper_accesses: Option<f64>,
    paper_memory_mbits: Option<f64>,
}

spc_bench::json_object!(Record {
    experiment,
    rules,
    rows
});
spc_bench::json_object!(RowRec {
    algorithm,
    avg_accesses,
    worst_accesses,
    memory_mbits,
    paper_accesses,
    paper_memory_mbits
});

fn paper_values(kind: EngineKind) -> Option<(f64, f64)> {
    match kind {
        EngineKind::HyperCuts => Some((60.05, 5.96)),
        EngineKind::Rfc => Some((48.0, 31.48)),
        EngineKind::Dcfl => Some((23.1, 22.54)),
        EngineKind::Option1 => Some((49.3, 5.57)),
        EngineKind::Option2 => Some((31.33, 6.36)),
        _ => None,
    }
}

fn main() {
    let n = scale_or(5000);
    let rules = ruleset(FilterKind::Acl, n);
    let t = trace(&rules, 2000);
    eprintln!("building engines over {} rules...", rules.len());

    let mut rows = Vec::new();
    let mut recs = Vec::new();
    for kind in EngineKind::ALL {
        let mut engine = EngineBuilder::new(kind)
            .build(&rules)
            .unwrap_or_else(|e| panic!("{kind} must hold the Table I workload: {e}"));
        let mut verdicts = Vec::new();
        let stats = engine.classify_batch(&t, &mut verdicts);
        let acc = stats.avg_mem_reads();
        let worst = verdicts.iter().map(|v| v.mem_reads).max().unwrap_or(0);
        let mem = mbits(engine.memory_bits());
        let paper = paper_values(kind);
        let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"));
        rows.push(Row {
            name: engine.name().to_string(),
            values: vec![
                format!("{acc:.2}"),
                format!("{worst}"),
                format!("{mem:.2}"),
                fmt_opt(paper.map(|p| p.0)),
                fmt_opt(paper.map(|p| p.1)),
            ],
        });
        recs.push(RowRec {
            algorithm: engine.name().to_string(),
            avg_accesses: acc,
            worst_accesses: worst,
            memory_mbits: mem,
            paper_accesses: paper.map(|p| p.0),
            paper_memory_mbits: paper.map(|p| p.1),
        });
    }
    print_table(
        &format!("Table I — lookup approaches (acl1, {} rules)", rules.len()),
        &["avg acc", "worst acc", "memory Mb", "paper acc", "paper Mb"],
        &rows,
    );
    emit_json(&Record {
        experiment: "table1",
        rules: rules.len(),
        rows: recs,
    });
}
