//! Table IV — port field labelling example: for destination port 7812
//! against A=`[0,65535]`, B=`[7812,7812]`, C=`[7810,7820]`, the label order must
//! be B (exact), C (tightest range), A (widest).

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, print_table, Row};
use spc_lookup::{FieldEngine, Label, LabelEntry, LabelStore, PortRegisters};
use spc_types::{DimValue, PortRange, Priority};

struct Record {
    experiment: &'static str,
    query: u16,
    output_order: Vec<String>,
}

spc_bench::json_object!(Record {
    experiment,
    query,
    output_order
});

fn main() {
    let mut store = LabelStore::new("dst_port", 16, 7);
    let mut regs = PortRegisters::new(16);
    let table = [
        ("A", PortRange::new(0, 65535).unwrap(), "Range matching"),
        ("B", PortRange::exact(7812), "Exact matching"),
        ("C", PortRange::new(7810, 7820).unwrap(), "Range matching"),
    ];
    let mut rows = Vec::new();
    for (i, (name, range, method)) in table.iter().enumerate() {
        regs.insert(
            &mut store,
            DimValue::Port(*range),
            LabelEntry::by_priority(Label(i as u16), Priority(i as u32)),
        )
        .expect("registers provisioned");
        rows.push(Row {
            name: format!("[{:>5} - {:>5}]", range.hi(), range.lo()),
            values: vec![name.to_string(), method.to_string()],
        });
    }
    print_table(
        "Table IV — port field rules and labelling",
        &["label", "match method"],
        &rows,
    );

    let query = 7812u16;
    let result = regs.lookup(&store, query).expect("registers never fail");
    let order: Vec<String> = result
        .labels
        .iter()
        .map(|e| ["A", "B", "C"][usize::from(e.label.0)].to_string())
        .collect();
    println!(
        "\nlookup({query}) label order: {}   (paper: B, C, A)",
        order.join(", ")
    );
    println!(
        "lookup latency: {} cycles (paper §V.B: two clock cycles)",
        result.cycles
    );
    assert_eq!(order, ["B", "C", "A"], "Table IV ordering must hold");
    emit_json(&Record {
        experiment: "table4",
        query,
        output_order: order,
    });
}
