//! `spc_audit` — static rule-set audits for the ClassBench families and
//! arbitrary rule files.
//!
//! With no arguments, audits the three canonical ClassBench families
//! (ACL / FW / IPC) at `SPC_SCALE` rules (default 512) exactly as the
//! benchmarks build them. Any positional argument is instead treated as
//! a path to a ClassBench-format rule file to audit.
//!
//! The audit runs through [`EngineBuilder::audit`], so the analyzer
//! limits (label-store capacities, Rule Filter slots) are derived from
//! the same auto-provisioned [`spc_core::ArchConfig`] the engine itself
//! would build with. Override the engine spec with `SPC_AUDIT_SPEC`
//! (default `configurable-bst`; see `EngineBuilder::from_spec`).
//!
//! Output:
//! - a per-set summary table plus every finding on stdout;
//! - a JSON findings artifact written to `SPC_AUDIT_OUT` when that env
//!   var is set (mirrors `SPC_BENCH_OUT` in `bench_smoke`);
//! - exit status 2 if any audited set has `Severity::Error` findings,
//!   so CI can gate on clean families.

use std::process::ExitCode;

use spc_analyze::{RuleSetReport, Severity};
use spc_bench::{print_table, ruleset, scale_or, Row, ToJson};
use spc_classbench::FilterKind;
use spc_engine::EngineBuilder;
use spc_types::{parse_ruleset, RuleSet};

use spc_bench::json_object;

/// One audited rule set, as emitted in the JSON artifact.
struct AuditRecord {
    /// Rule-set name (family + scale, or file path).
    name: String,
    /// Engine spec whose provisioning the limits were derived from.
    engine_spec: String,
    /// The full analyzer report.
    report: RuleSetReport,
}

json_object!(AuditRecord {
    name,
    engine_spec,
    report
});

/// Top-level JSON artifact.
struct AuditArtifact {
    /// Spec used for every audit in this run.
    engine_spec: String,
    /// Workload scale (rules per generated family).
    scale: usize,
    /// One record per audited set.
    audits: Vec<AuditRecord>,
}

json_object!(AuditArtifact {
    engine_spec,
    scale,
    audits
});

fn severity_count(report: &RuleSetReport, s: Severity) -> usize {
    report.at_severity(s).count()
}

fn load_sets(args: &[String], scale: usize) -> Vec<(String, RuleSet)> {
    if args.is_empty() {
        let families = [
            ("acl", FilterKind::Acl),
            ("fw", FilterKind::Fw),
            ("ipc", FilterKind::Ipc),
        ];
        return families
            .into_iter()
            .map(|(name, kind)| (format!("{name}{scale}"), ruleset(kind, scale)))
            .collect();
    }
    args.iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("spc_audit: cannot read {path}: {e}"));
            let rules = parse_ruleset(&text)
                .unwrap_or_else(|e| panic!("spc_audit: cannot parse {path}: {e}"));
            (path.clone(), rules)
        })
        .collect()
}

fn main() -> ExitCode {
    let spec = std::env::var("SPC_AUDIT_SPEC").unwrap_or_else(|_| "configurable-bst".to_string());
    let builder = EngineBuilder::from_spec(&spec)
        .unwrap_or_else(|e| panic!("spc_audit: bad SPC_AUDIT_SPEC {spec:?}: {e}"));
    let scale = scale_or(512);
    let args: Vec<String> = std::env::args().skip(1).filter(|a| a != "--json").collect();

    let sets = load_sets(&args, scale);
    let mut rows = Vec::new();
    let mut audits = Vec::new();
    for (name, rules) in &sets {
        eprintln!("auditing {name} ({} rules)...", rules.len());
        let report = builder.audit(rules);
        rows.push(Row {
            name: name.clone(),
            values: vec![
                rules.len().to_string(),
                severity_count(&report, Severity::Error).to_string(),
                severity_count(&report, Severity::Warning).to_string(),
                severity_count(&report, Severity::Info).to_string(),
                report.shadowed_rules().len().to_string(),
                report.distinct_keys.to_string(),
                report.exhaustive.to_string(),
                report.probes.to_string(),
            ],
        });
        audits.push(AuditRecord {
            name: name.clone(),
            engine_spec: spec.clone(),
            report,
        });
    }

    print_table(
        "rule-set audit",
        &[
            "rules",
            "errors",
            "warnings",
            "infos",
            "shadowed",
            "keys",
            "exhaustive",
            "probes",
        ],
        &rows,
    );

    for rec in &audits {
        println!("\n--- {} ---", rec.name);
        println!("{}", rec.report);
    }

    let has_errors = audits.iter().any(|r| r.report.has_errors());
    let artifact = AuditArtifact {
        engine_spec: spec,
        scale,
        audits,
    };
    if let Ok(path) = std::env::var("SPC_AUDIT_OUT") {
        std::fs::write(&path, artifact.to_json().pretty() + "\n")
            .unwrap_or_else(|e| panic!("spc_audit: cannot write {path}: {e}"));
        eprintln!("wrote findings to {path}");
    }
    spc_bench::emit_json(&artifact);

    if has_errors {
        eprintln!("spc_audit: error-level findings present");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
