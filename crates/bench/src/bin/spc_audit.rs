//! `spc_audit` — static rule-set audits for the ClassBench families and
//! arbitrary rule files.
//!
//! With no arguments, audits the three canonical ClassBench families
//! (ACL / FW / IPC) at `SPC_SCALE` rules (default 512) exactly as the
//! benchmarks build them. Any positional argument is instead treated as
//! a path to a ClassBench-format rule file to audit.
//!
//! The audit runs through [`EngineBuilder::audit`], so the analyzer
//! limits (label-store capacities, Rule Filter slots) are derived from
//! the same auto-provisioned [`spc_core::ArchConfig`] the engine itself
//! would build with. Override the engine spec with `SPC_AUDIT_SPEC`
//! (default `configurable-bst`; see `EngineBuilder::from_spec`).
//!
//! Set `SPC_AUDIT_OPTIMIZE=1` to also run the semantics-preserving
//! optimizer (full pass pipeline, `spc_analyze::optimize`) over every
//! audited set: a per-set summary — rules before/after, what each pass
//! removed or merged, and the equivalence checker's validation verdict —
//! is printed and lands in the JSON artifact.
//!
//! Output:
//! - a per-set summary table plus every finding on stdout;
//! - a JSON findings artifact written to `SPC_AUDIT_OUT` when that env
//!   var is set (mirrors `SPC_BENCH_OUT` in `bench_smoke`);
//! - exit status 2 if any audited set has `Severity::Error` findings,
//!   so CI can gate on clean families;
//! - exit status 3 if `SPC_AUDIT_OPTIMIZE` validation ever reports
//!   `Differs` — the optimizer broke semantics, the strongest possible
//!   red flag.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

use spc_analyze::{optimize, OptimizeConfig, RuleSetReport, Severity};
use spc_bench::{print_table, ruleset, scale_or, Row, ToJson};
use spc_classbench::FilterKind;
use spc_engine::EngineBuilder;
use spc_types::{parse_ruleset, RuleSet};

use spc_bench::json_object;

/// One audited rule set, as emitted in the JSON artifact.
struct AuditRecord {
    /// Rule-set name (family + scale, or file path).
    name: String,
    /// Engine spec whose provisioning the limits were derived from.
    engine_spec: String,
    /// The full analyzer report.
    report: RuleSetReport,
    /// Optimizer summary, present under `SPC_AUDIT_OPTIMIZE=1`.
    optimization: Option<OptimizeSummary>,
}

json_object!(AuditRecord {
    name,
    engine_spec,
    report,
    optimization
});

/// Per-set optimizer summary (`SPC_AUDIT_OPTIMIZE=1`).
struct OptimizeSummary {
    /// Rules in the set as audited.
    rules_before: usize,
    /// Rules surviving the full pass pipeline.
    rules_after: usize,
    /// What each executed pass did, in pipeline order.
    passes: Vec<PassSummary>,
    /// The equivalence checker's verdict on original vs optimized.
    validation: String,
    /// Whether validation proved the sets differ — must never happen.
    differs: bool,
}

json_object!(OptimizeSummary {
    rules_before,
    rules_after,
    passes,
    validation,
    differs
});

/// One optimizer pass in the summary.
struct PassSummary {
    /// Stable pass code (`duplicate-coalescing`, ...).
    pass: String,
    /// Rules the pass removed.
    removed: usize,
    /// Range pairs the pass fused.
    merges: usize,
    /// Priorities the pass rewrote.
    renumbered: usize,
}

json_object!(PassSummary {
    pass,
    removed,
    merges,
    renumbered
});

/// Top-level JSON artifact.
struct AuditArtifact {
    /// Spec used for every audit in this run.
    engine_spec: String,
    /// Workload scale (rules per generated family).
    scale: usize,
    /// One record per audited set.
    audits: Vec<AuditRecord>,
}

json_object!(AuditArtifact {
    engine_spec,
    scale,
    audits
});

fn severity_count(report: &RuleSetReport, s: Severity) -> usize {
    report.at_severity(s).count()
}

/// Runs the full optimizer pipeline over one set and folds the result
/// into the artifact's summary shape. A `ValidationFailed` error — the
/// checker proved the optimizer changed semantics — becomes a summary
/// with `differs: true` rather than a panic, so every set still gets
/// audited and the process exits 3 at the end.
fn optimize_summary(rules: &RuleSet) -> OptimizeSummary {
    match optimize(rules, &OptimizeConfig::default()) {
        Ok(opt) => OptimizeSummary {
            rules_before: opt.original_rules,
            rules_after: opt.rules.len(),
            passes: opt
                .passes
                .iter()
                .map(|p| PassSummary {
                    pass: p.pass.code().to_string(),
                    removed: p.removed.len(),
                    merges: p.merges,
                    renumbered: p.renumbered,
                })
                .collect(),
            validation: opt.validation.to_string(),
            differs: false,
        },
        Err(e) => OptimizeSummary {
            rules_before: rules.len(),
            rules_after: rules.len(),
            passes: Vec::new(),
            validation: e.to_string(),
            differs: true,
        },
    }
}

fn load_sets(args: &[String], scale: usize) -> Vec<(String, RuleSet)> {
    if args.is_empty() {
        let families = [
            ("acl", FilterKind::Acl),
            ("fw", FilterKind::Fw),
            ("ipc", FilterKind::Ipc),
        ];
        return families
            .into_iter()
            .map(|(name, kind)| (format!("{name}{scale}"), ruleset(kind, scale)))
            .collect();
    }
    args.iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("spc_audit: cannot read {path}: {e}"));
            let rules = parse_ruleset(&text)
                .unwrap_or_else(|e| panic!("spc_audit: cannot parse {path}: {e}"));
            (path.clone(), rules)
        })
        .collect()
}

fn main() -> ExitCode {
    let spec = std::env::var("SPC_AUDIT_SPEC").unwrap_or_else(|_| "configurable-bst".to_string());
    let builder = EngineBuilder::from_spec(&spec)
        .unwrap_or_else(|e| panic!("spc_audit: bad SPC_AUDIT_SPEC {spec:?}: {e}"));
    let scale = scale_or(512);
    let args: Vec<String> = std::env::args().skip(1).filter(|a| a != "--json").collect();

    let run_optimizer = std::env::var("SPC_AUDIT_OPTIMIZE").is_ok_and(|v| v == "1");

    let sets = load_sets(&args, scale);
    let mut rows = Vec::new();
    let mut opt_rows = Vec::new();
    let mut audits = Vec::new();
    for (name, rules) in &sets {
        eprintln!("auditing {name} ({} rules)...", rules.len());
        let report = builder.audit(rules);
        rows.push(Row {
            name: name.clone(),
            values: vec![
                rules.len().to_string(),
                severity_count(&report, Severity::Error).to_string(),
                severity_count(&report, Severity::Warning).to_string(),
                severity_count(&report, Severity::Info).to_string(),
                report.shadowed_rules().len().to_string(),
                report.distinct_keys.to_string(),
                report.exhaustive.to_string(),
                report.probes.to_string(),
            ],
        });
        let optimization = run_optimizer.then(|| {
            let summary = optimize_summary(rules);
            opt_rows.push(Row {
                name: name.clone(),
                values: vec![
                    summary.rules_before.to_string(),
                    summary.rules_after.to_string(),
                    summary
                        .passes
                        .iter()
                        .map(|p| format!("{}:{}", p.pass, p.removed + p.merges + p.renumbered))
                        .collect::<Vec<_>>()
                        .join(" "),
                    summary.validation.clone(),
                ],
            });
            summary
        });
        audits.push(AuditRecord {
            name: name.clone(),
            engine_spec: spec.clone(),
            report,
            optimization,
        });
    }

    print_table(
        "rule-set audit",
        &[
            "rules",
            "errors",
            "warnings",
            "infos",
            "shadowed",
            "keys",
            "exhaustive",
            "probes",
        ],
        &rows,
    );
    if run_optimizer {
        print_table(
            "optimizer (full pipeline, validated)",
            &["before", "after", "passes", "validation"],
            &opt_rows,
        );
    }

    for rec in &audits {
        println!("\n--- {} ---", rec.name);
        println!("{}", rec.report);
    }

    let has_errors = audits.iter().any(|r| r.report.has_errors());
    let has_differs = audits
        .iter()
        .any(|r| r.optimization.as_ref().is_some_and(|o| o.differs));
    let artifact = AuditArtifact {
        engine_spec: spec,
        scale,
        audits,
    };
    if let Ok(path) = std::env::var("SPC_AUDIT_OUT") {
        std::fs::write(&path, artifact.to_json().pretty() + "\n")
            .unwrap_or_else(|e| panic!("spc_audit: cannot write {path}: {e}"));
        eprintln!("wrote findings to {path}");
    }
    spc_bench::emit_json(&artifact);

    if has_differs {
        eprintln!("spc_audit: the optimizer FAILED validation on at least one set");
        return ExitCode::from(3);
    }
    if has_errors {
        eprintln!("spc_audit: error-level findings present");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
