//! Table II — number of unique rule fields per rule set (acl1 at 1K, 5K,
//! 10K). The label method's storage saving rests on these counts.
//!
//! Paper: srcIP 103/805/4784, dstIP 297/640/733, srcPort 1/1/1,
//! dstPort 99/108/108, proto 3/3/3.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, print_table, ruleset, Row};
use spc_classbench::{ruleset_stats, FilterKind};

struct Record {
    experiment: &'static str,
    rows: Vec<spc_classbench::RuleSetStats>,
}

spc_bench::json_object!(Record { experiment, rows });

fn main() {
    let paper = [
        ("acl1 1K", [103, 297, 1, 99, 3]),
        ("acl1 5K", [805, 640, 1, 108, 3]),
        ("acl1 10K", [4784, 733, 1, 108, 3]),
    ];
    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for (i, &(name, p)) in paper.iter().enumerate() {
        let n = [1000, 5000, 10000][i];
        let rs = ruleset(FilterKind::Acl, n);
        let st = ruleset_stats(name, &rs);
        rows.push(Row {
            name: format!("{name} ({} rules)", st.rules),
            values: vec![
                format!("{} ({})", st.uniques.src_ip, p[0]),
                format!("{} ({})", st.uniques.dst_ip, p[1]),
                format!("{} ({})", st.uniques.src_port, p[2]),
                format!("{} ({})", st.uniques.dst_port, p[3]),
                format!("{} ({})", st.uniques.proto, p[4]),
                format!("{:.0}%", 100.0 * st.label_saving),
            ],
        });
        stats.push(st);
    }
    print_table(
        "Table II — unique rule fields, measured (paper)",
        &[
            "srcIP",
            "dstIP",
            "srcPort",
            "dstPort",
            "proto",
            "label saving",
        ],
        &rows,
    );
    println!("\nPaper §III.C: label method cuts storage by more than 50%.");
    emit_json(&Record {
        experiment: "table2",
        rows: stats,
    });
}
