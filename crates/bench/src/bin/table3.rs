//! Table III — analysis of rule filters: rule counts of the ACL / FW /
//! IPC families at the 1K / 5K / 10K scales (after redundancy removal).
//!
//! Paper: ACL 916/4415/9603, FW 791/4653/9311, IPC 938/4460/9037.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, print_table, ruleset, Row};
use spc_classbench::FilterKind;

struct Record {
    experiment: &'static str,
    rows: Vec<(String, [usize; 3], [usize; 3])>,
}

spc_bench::json_object!(Record { experiment, rows });

fn main() {
    let paper = [
        (FilterKind::Acl, "ACL", [916usize, 4415, 9603]),
        (FilterKind::Fw, "FW", [791, 4653, 9311]),
        (FilterKind::Ipc, "IPC", [938, 4460, 9037]),
    ];
    let mut rows = Vec::new();
    let mut recs = Vec::new();
    for (kind, name, p) in paper {
        let counts: Vec<usize> = [1000, 5000, 10000]
            .iter()
            .map(|&n| ruleset(kind, n).len())
            .collect();
        rows.push(Row {
            name: name.to_string(),
            values: vec![
                format!("{} ({})", counts[0], p[0]),
                format!("{} ({})", counts[1], p[1]),
                format!("{} ({})", counts[2], p[2]),
            ],
        });
        recs.push((name.to_string(), [counts[0], counts[1], counts[2]], p));
    }
    print_table(
        "Table III — rule filters, measured (paper)",
        &["1K rules", "5K rules", "10K rules"],
        &rows,
    );
    emit_json(&Record {
        experiment: "table3",
        rows: recs,
    });
}
