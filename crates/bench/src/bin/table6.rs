//! Table VI — performance evaluation for the configurable IP algorithm.
//!
//! Paper: MBT — 1 memory access (clock cycle) per packet (pipelined),
//! 543 Kbits, 8K rules. BST — 16 per packet, 49 Kbits, 12K rules.
//!
//! We load an ACL set in each mode, replay a trace, and report the
//! measured initiation interval (accesses per packet at line rate), the
//! IP-engine memory and the stored rule count.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, kbits, print_table, ruleset, scale_or, trace, Row};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, CombineStrategy, IpAlg};

struct ModeRec {
    alg: String,
    avg_accesses_per_packet: f64,
    fast_path_agreement: f64,
    ip_engine_kbits_used: f64,
    ip_engine_kbits_provisioned: f64,
    stored_rules: usize,
}

struct Record {
    experiment: &'static str,
    rows: Vec<ModeRec>,
}

fn run_mode(alg: IpAlg, n_rules: usize) -> ModeRec {
    let rules = ruleset(FilterKind::Acl, n_rules);
    // The paper's data plane hashes only the per-dimension HPML heads
    // (FirstLabel); its HPMR agreement against the oracle is reported.
    let mut cfg = ArchConfig::large()
        .with_ip_alg(alg)
        .with_combine(CombineStrategy::FirstLabel);
    cfg.rule_filter_addr_bits = 15;
    let mut cls = Classifier::new(cfg);
    cls.load(&rules).expect("large config fits the workload");
    let t = trace(&rules, 3000);
    let mut ii_sum = 0u64;
    let mut agree = 0usize;
    for h in &t {
        let c = cls.classify(h);
        ii_sum += u64::from(c.timing.initiation_interval);
        if c.hit.map(|x| x.rule_id) == rules.classify(h).map(|(id, _)| id) {
            agree += 1;
        }
    }
    let rep = cls.memory_report();
    let ip_engines = |used: bool| {
        rep.blocks
            .iter()
            .filter(|b| {
                b.name.ends_with("/engine")
                    && (b.name.starts_with("sip") || b.name.starts_with("dip"))
            })
            .map(|b| {
                if used {
                    b.used_bits
                } else {
                    b.provisioned_bits
                }
            })
            .sum::<u64>()
    };
    ModeRec {
        alg: alg.to_string(),
        avg_accesses_per_packet: ii_sum as f64 / t.len() as f64,
        fast_path_agreement: agree as f64 / t.len() as f64,
        ip_engine_kbits_used: kbits(ip_engines(true)),
        ip_engine_kbits_provisioned: kbits(ip_engines(false)),
        stored_rules: cls.len(),
    }
}

spc_bench::json_object!(ModeRec {
    alg,
    avg_accesses_per_packet,
    fast_path_agreement,
    ip_engine_kbits_used,
    ip_engine_kbits_provisioned,
    stored_rules
});
spc_bench::json_object!(Record { experiment, rows });

fn main() {
    let mbt = run_mode(IpAlg::Mbt, scale_or(8000));
    let bst = run_mode(IpAlg::Bst, scale_or(8000) * 3 / 2);
    let paper = [("MBT", 1.0, 543.0, 8000usize), ("BST", 16.0, 49.0, 12000)];
    let rows: Vec<Row> = [&mbt, &bst]
        .iter()
        .zip(paper)
        .map(|(m, (_, pacc, pkb, prules))| Row {
            name: m.alg.clone(),
            values: vec![
                format!("{:.2} ({pacc})", m.avg_accesses_per_packet),
                format!("{:.1}%", 100.0 * m.fast_path_agreement),
                format!(
                    "{:.0} used / {:.0} prov ({pkb})",
                    m.ip_engine_kbits_used, m.ip_engine_kbits_provisioned
                ),
                format!("{} ({prules})", m.stored_rules),
            ],
        })
        .collect();
    print_table(
        "Table VI — IP algorithm comparison, measured (paper)",
        &[
            "accesses/packet",
            "HPMR agree",
            "IP memory Kbits",
            "stored rules",
        ],
        &rows,
    );
    println!("\nMBT is pipelined (II=1: one packet per cycle); BST pays its search depth.");
    emit_json(&Record {
        experiment: "table6",
        rows: vec![mbt, bst],
    });
}
