//! Table VII — performance comparison of hardware designs at 40-byte
//! packets.
//!
//! Our rows are computed from the cycle model (measured initiation
//! interval × 133.51 MHz); the two external rows quote the paper's cited
//! numbers for Optimizing HyperCuts \[9\] and DCFLE \[4\]/\[6\].

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, mbits, print_table, ruleset, scale_or, trace, Row};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, CombineStrategy, IpAlg};
use spc_hwsim::MIN_PACKET_BYTES;

struct RowRec {
    system: String,
    memory_mbits: f64,
    stored_rules: usize,
    throughput_gbps: f64,
    quoted: bool,
}

struct Record {
    experiment: &'static str,
    rows: Vec<RowRec>,
}

fn our_row(alg: IpAlg, n_rules: usize) -> RowRec {
    let rules = ruleset(FilterKind::Acl, n_rules);
    // Paper-width labels, content-tuned provisioning (see EXPERIMENTS.md).
    let mut cfg = ArchConfig::paper_prototype()
        .with_ip_alg(alg)
        .with_combine(CombineStrategy::FirstLabel);
    cfg.mbt_leaf_nodes = 1024;
    cfg.bst_max_intervals = 8192;
    cfg.ip_label_entries = 1 << 16;
    cfg.rule_filter_addr_bits = 15;
    let mut cls = Classifier::new(cfg);
    cls.load(&rules).expect("large config fits the workload");
    let t = trace(&rules, 2000);
    let mut ii = 0f64;
    for h in &t {
        ii += f64::from(cls.classify(h).timing.initiation_interval);
    }
    ii /= t.len() as f64;
    let gbps = cls.config().clock.throughput_gbps(ii, MIN_PACKET_BYTES);
    RowRec {
        system: format!("Our system with {alg}"),
        memory_mbits: mbits(cls.memory_report().total_provisioned()),
        stored_rules: cls.len(),
        throughput_gbps: gbps,
        quoted: false,
    }
}

spc_bench::json_object!(RowRec {
    system,
    memory_mbits,
    stored_rules,
    throughput_gbps,
    quoted
});
spc_bench::json_object!(Record { experiment, rows });

fn main() {
    let mut rows = vec![
        our_row(IpAlg::Mbt, scale_or(8000)),
        our_row(IpAlg::Bst, scale_or(8000)),
    ];
    rows.push(RowRec {
        system: "Optimizing HyperCuts [9]".into(),
        memory_mbits: 4.90,
        stored_rules: 10_000,
        throughput_gbps: 80.23,
        quoted: true,
    });
    rows.push(RowRec {
        system: "DCFLE [4]".into(),
        memory_mbits: 1.77,
        stored_rules: 128,
        throughput_gbps: 16.0,
        quoted: true,
    });
    let paper = [
        ("Our system with MBT", 2.1, 8000usize, 42.73),
        ("Our system with BST", 2.1, 12000, 2.67),
        ("Optimizing HyperCuts [9]", 4.90, 10_000, 80.23),
        ("DCFLE [4]", 1.77, 128, 16.0),
    ];
    let printable: Vec<Row> = rows
        .iter()
        .zip(paper)
        .map(|(r, (_, pmb, prules, pgbps))| Row {
            name: r.system.clone(),
            values: vec![
                format!("{:.2} ({pmb})", r.memory_mbits),
                format!("{} ({prules})", r.stored_rules),
                format!("{:.2} ({pgbps})", r.throughput_gbps),
                if r.quoted {
                    "quoted".into()
                } else {
                    "measured".into()
                },
            ],
        })
        .collect();
    print_table(
        "Table VII — 5-field hardware comparison at 40 B packets, measured (paper)",
        &["memory Mb", "rules", "Gbps", "provenance"],
        &printable,
    );
    println!("\nShape checks: MBT ≫ BST in throughput; [9] fastest but largest memory;");
    println!("DCFLE smallest but capacity-limited — same ordering as the paper.");
    emit_json(&Record {
        experiment: "table7",
        rows,
    });
}
