//! §V.A — memory accesses for update: rule insertion and deletion cost
//! under the label method's reference-counted incremental update.
//!
//! The paper: insertion/deletion = a memory upload of 2 clock cycles per
//! rule (source + destination info) + 1 cycle for the hash. Structural
//! writes happen only when a *new* label must be stored, which the label
//! method makes rare — this binary measures exactly how rare.
//!
//! The workload is the simplest possible [`ScenarioScript`] — install
//! the whole rule set, then remove it again — driven through the
//! generic scenario runner, so the sweep exercises the same
//! `TraceSource` machinery as the churn benches.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_bench::{emit_json, print_table, ruleset, scale_or, Row};
use spc_classbench::{FilterKind, ScenarioScript, TraceGenerator};
use spc_core::{ArchConfig, Classifier, IpAlg};
use spc_engine::{run_scenario, ConfigurableEngine};

struct Record {
    experiment: &'static str,
    rows: Vec<KindRec>,
}

struct KindRec {
    kind: String,
    alg: String,
    rules: usize,
    avg_insert_cycles: f64,
    avg_new_labels_per_rule: f64,
    avg_delete_cycles: f64,
    share_hit_rate: f64,
}

fn run(kind: FilterKind, alg: IpAlg, n: usize) -> KindRec {
    let rules = ruleset(kind, n);
    let mut cfg = ArchConfig::large().with_ip_alg(alg);
    cfg.rule_filter_addr_bits = 14;
    let mut engine = ConfigurableEngine::new(Classifier::new(cfg));

    // Install everything, then delete everything — as a scenario over a
    // pool that is exactly the rule set, in order.
    let script = ScenarioScript::parse(&format!("insert {n}; remove {n}", n = rules.len()))
        .expect("valid script");
    let no_traffic = spc_types::RuleSet::new();
    let mut source = script
        .source(&TraceGenerator::new(), &no_traffic, rules.rules())
        .expect("non-empty pool");
    let report = run_scenario(&mut engine, &mut source, &mut Vec::new()).expect("config fits");
    assert_eq!(report.duplicates, 0, "generated sets are duplicate-free");
    assert_eq!(report.inserts, rules.len() as u64);
    assert_eq!(report.removes, rules.len() as u64);

    let per_rule = |total: u64| total as f64 / rules.len() as f64;
    KindRec {
        kind: kind.to_string(),
        alg: alg.to_string(),
        rules: rules.len(),
        avg_insert_cycles: per_rule(report.insert_cycles),
        avg_new_labels_per_rule: per_rule(report.created_labels),
        avg_delete_cycles: per_rule(report.remove_cycles),
        // 7 single-field lookups per rule; every one that did not create
        // a label shared an existing one.
        share_hit_rate: (7.0 * rules.len() as f64 - report.created_labels as f64)
            / (7.0 * rules.len() as f64),
    }
}

spc_bench::json_object!(Record { experiment, rows });
spc_bench::json_object!(KindRec {
    kind,
    alg,
    rules,
    avg_insert_cycles,
    avg_new_labels_per_rule,
    avg_delete_cycles,
    share_hit_rate
});

fn main() {
    let n = scale_or(1000);
    let mut rows = Vec::new();
    let mut recs = Vec::new();
    for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
        for alg in [IpAlg::Mbt, IpAlg::Bst] {
            let r = run(kind, alg, n);
            rows.push(Row {
                name: format!("{} / {}", r.kind, r.alg),
                values: vec![
                    format!("{}", r.rules),
                    format!("{:.1}", r.avg_insert_cycles),
                    format!("{:.2}", r.avg_new_labels_per_rule),
                    format!("{:.1}", r.avg_delete_cycles),
                    format!("{:.0}%", 100.0 * r.share_hit_rate),
                ],
            });
            recs.push(r);
        }
    }
    print_table(
        "§V.A — incremental update cost (avg per rule)",
        &[
            "rules",
            "insert cycles",
            "new labels",
            "delete cycles",
            "label reuse",
        ],
        &rows,
    );
    println!("\nPaper floor: 3 cycles/rule (2 data + 1 hash). Extra cycles are");
    println!("structural writes for new labels; the BST rows include its software");
    println!("rebuild push-down — the limitation the paper concedes in §IV.C.");
    emit_json(&Record {
        experiment: "update_eval",
        rows: recs,
    });
}
