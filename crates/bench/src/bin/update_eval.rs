//! §V.A — memory accesses for update: rule insertion and deletion cost
//! under the label method's reference-counted incremental update.
//!
//! The paper: insertion/deletion = a memory upload of 2 clock cycles per
//! rule (source + destination info) + 1 cycle for the hash. Structural
//! writes happen only when a *new* label must be stored, which the label
//! method makes rare — this binary measures exactly how rare.

use spc_bench::{emit_json, print_table, ruleset, scale_or, Row};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, IpAlg};

struct Record {
    experiment: &'static str,
    rows: Vec<KindRec>,
}

struct KindRec {
    kind: String,
    alg: String,
    rules: usize,
    avg_insert_cycles: f64,
    avg_new_labels_per_rule: f64,
    avg_delete_cycles: f64,
    share_hit_rate: f64,
}

fn run(kind: FilterKind, alg: IpAlg, n: usize) -> KindRec {
    let rules = ruleset(kind, n);
    let mut cfg = ArchConfig::large().with_ip_alg(alg);
    cfg.rule_filter_addr_bits = 14;
    let mut cls = Classifier::new(cfg);
    let (mut ins_cycles, mut labels, mut shared) = (0u64, 0u64, 0u64);
    let mut ids = Vec::new();
    for r in rules.rules() {
        let rep = cls.insert(*r).expect("config fits");
        ins_cycles += rep.hw_write_cycles;
        labels += u64::from(rep.created_labels);
        shared += u64::from(7 - rep.created_labels);
        ids.push(rep.rule_id);
    }
    let mut del_cycles = 0u64;
    for id in &ids {
        let (_, rep) = cls.remove(*id).expect("installed");
        del_cycles += rep.hw_write_cycles;
    }
    KindRec {
        kind: kind.to_string(),
        alg: alg.to_string(),
        rules: rules.len(),
        avg_insert_cycles: ins_cycles as f64 / rules.len() as f64,
        avg_new_labels_per_rule: labels as f64 / rules.len() as f64,
        avg_delete_cycles: del_cycles as f64 / rules.len() as f64,
        share_hit_rate: shared as f64 / (7.0 * rules.len() as f64),
    }
}

spc_bench::json_object!(Record { experiment, rows });
spc_bench::json_object!(KindRec {
    kind,
    alg,
    rules,
    avg_insert_cycles,
    avg_new_labels_per_rule,
    avg_delete_cycles,
    share_hit_rate
});

fn main() {
    let n = scale_or(1000);
    let mut rows = Vec::new();
    let mut recs = Vec::new();
    for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
        for alg in [IpAlg::Mbt, IpAlg::Bst] {
            let r = run(kind, alg, n);
            rows.push(Row {
                name: format!("{} / {}", r.kind, r.alg),
                values: vec![
                    format!("{}", r.rules),
                    format!("{:.1}", r.avg_insert_cycles),
                    format!("{:.2}", r.avg_new_labels_per_rule),
                    format!("{:.1}", r.avg_delete_cycles),
                    format!("{:.0}%", 100.0 * r.share_hit_rate),
                ],
            });
            recs.push(r);
        }
    }
    print_table(
        "§V.A — incremental update cost (avg per rule)",
        &[
            "rules",
            "insert cycles",
            "new labels",
            "delete cycles",
            "label reuse",
        ],
        &rows,
    );
    println!("\nPaper floor: 3 cycles/rule (2 data + 1 hash). Extra cycles are");
    println!("structural writes for new labels; the BST rows include its software");
    println!("rebuild push-down — the limitation the paper concedes in §IV.C.");
    emit_json(&Record {
        experiment: "update_eval",
        rows: recs,
    });
}
