//! Criterion bench: incremental update churn through the unified engine
//! API — a [`ScenarioScript`] of interleaved insert/classify/remove
//! bursts on the sharded backend at {1, 2, 8} shards (both strategies)
//! vs the unsharded configurable inner. This measures the cost of
//! keeping the paper's §V.A fast update path alive under sharding: hash
//! routing re-folds one dimension per insert, priority bands pay
//! occasional split migrations, and both pay the global↔local id
//! bookkeeping.
//!
//! Each iteration replays the same scenario — insert the whole churn
//! pool in bursts, classify between bursts, then remove everything it
//! inserted — so the engine returns to its base state and iterations
//! are independent.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spc_bench::{ruleset, traffic};
use spc_classbench::{FilterKind, RuleSetGenerator, ScenarioScript};
use spc_engine::{build_engine, run_scenario};
use spc_types::{Priority, Rule};

const BASE_RULES: usize = 2048;
const POOL: usize = 64;

/// Four bursts of 16 inserts, each followed by a classify window, then
/// everything removed again — net zero, like the old hand-rolled loop.
const SCRIPT: &str = "repeat 4 { insert 16; classify 8 }; remove 64";

fn bench_update_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_churn");
    group.sample_size(10);
    let base = ruleset(FilterKind::Acl, BASE_RULES);
    // A separate family keeps dimension collisions with the base set
    // rare; the ones that remain surface as Duplicate and are skipped,
    // identically for every spec.
    let pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, POOL)
        .seed(2014 ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = Priority(60_000 + i as u32);
            r
        })
        .collect();
    let script = ScenarioScript::parse(SCRIPT).expect("valid script");
    let specs = [
        "configurable-bst".to_string(),
        "sharded:inner=configurable-bst,shards=1,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
    ];
    for spec in &specs {
        let mut engine =
            build_engine(spec, &base).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        assert!(engine.supports_updates(), "{spec} must be updatable");
        let mut verdicts = Vec::new();
        group.bench_function(BenchmarkId::new("scenario", spec), |b| {
            b.iter(|| {
                verdicts.clear();
                let mut source = script
                    .source(&traffic(), &base, &pool)
                    .expect("scenario binds");
                let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts)
                    .unwrap_or_else(|e| panic!("{spec}: churn scenario failed: {e}"));
                assert_eq!(
                    report.live_inserts.len(),
                    0,
                    "{spec}: the scenario is net zero"
                );
                report.update_ops()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_churn);
criterion_main!(benches);
