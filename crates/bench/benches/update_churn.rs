//! Criterion bench: incremental update churn through the unified engine
//! API — interleaved insert/classify/remove on the sharded backend at
//! {1, 2, 8} shards (both strategies) vs the unsharded configurable
//! inner. This measures the cost of keeping the paper's §V.A fast
//! update path alive under sharding: hash routing re-folds one
//! dimension per insert, priority bands pay occasional split
//! migrations, and both pay the global↔local id bookkeeping.
//!
//! Each iteration inserts the whole churn pool, classifies a slice of
//! trace traffic, then removes everything it inserted, so the engine
//! returns to its base state and iterations are independent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spc_bench::{ruleset, trace};
use spc_classbench::{FilterKind, RuleSetGenerator};
use spc_engine::{build_engine, UpdateError};
use spc_types::{Priority, Rule};

const BASE_RULES: usize = 2048;
const POOL: usize = 64;
const CLASSIFIES: usize = 32;

fn bench_update_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_churn");
    group.sample_size(10);
    let base = ruleset(FilterKind::Acl, BASE_RULES);
    let headers = trace(&base, 256);
    // A separate family keeps dimension collisions with the base set
    // rare; the ones that remain surface as Duplicate and are skipped,
    // identically for every spec.
    let pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, POOL)
        .seed(2014 ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = Priority(60_000 + i as u32);
            r
        })
        .collect();
    let specs = [
        "configurable-bst".to_string(),
        "sharded:inner=configurable-bst,shards=1,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=prio".to_string(),
        "sharded:inner=configurable-bst,shards=2,strategy=hash".to_string(),
        "sharded:inner=configurable-bst,shards=8,strategy=hash".to_string(),
    ];
    for spec in &specs {
        let mut engine =
            build_engine(spec, &base).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        assert!(engine.supports_updates(), "{spec} must be updatable");
        group.bench_function(BenchmarkId::new("insert_classify_remove", spec), |b| {
            b.iter(|| {
                let mut ids = Vec::with_capacity(pool.len());
                for rule in &pool {
                    match engine.insert(*rule) {
                        Ok(id) => ids.push(id),
                        Err(UpdateError::Duplicate { .. }) => {}
                        Err(e) => panic!("{spec}: churn insert rejected: {e}"),
                    }
                }
                for h in &headers[..CLASSIFIES] {
                    engine.classify(h);
                }
                for id in ids {
                    engine.remove(id).expect("inserted this iteration");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_churn);
criterion_main!(benches);
