//! Criterion bench: every registry backend through the unified
//! `PacketClassifier` trait, single-shot vs the amortised batch path —
//! so the batch speedup is measured, not asserted.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_bench::{ruleset, trace};
use spc_classbench::FilterKind;
use spc_engine::{EngineBuilder, EngineKind, PacketClassifier, Verdict};

fn engines(rules: &spc_types::RuleSet) -> Vec<Box<dyn PacketClassifier>> {
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            EngineBuilder::new(kind)
                .build(rules)
                .expect("2K-rule ACL fits every backend")
        })
        .collect()
}

fn bench_single_vs_batch(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, 2000);
    let t = trace(&rules, 512);
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(t.len() as u64));
    for mut engine in engines(&rules) {
        group.bench_with_input(BenchmarkId::new("single", engine.name()), &t, |b, t| {
            b.iter(|| {
                let mut hits = 0u64;
                for h in t {
                    hits += u64::from(engine.classify(h).is_hit());
                }
                hits
            });
        });
        let mut out: Vec<Verdict> = Vec::new();
        group.bench_with_input(BenchmarkId::new("batch", engine.name()), &t, |b, t| {
            b.iter(|| engine.classify_batch(t, &mut out).hits);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_vs_batch);
criterion_main!(benches);
