//! Criterion bench: flow-cache batch throughput as a function of
//! trace locality × cache size, on an 8k-rule ACL set — the cached
//! engine against its own *uncached* inner backend on the identical
//! trace, so the cache's amortisation is read straight off the report.
//! A churn group re-measures the warm cache while rules are inserted
//! and removed through the wrapper between batches (the invalidation
//! path's steady-state cost).
//!
//! `SPC_SCALE` overrides the rule count; `--test` (as in CI's
//! bench-smoke job) runs every body once.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_bench::{ruleset, scale_or, SEED_TRACE};
use spc_classbench::{FilterKind, TraceGenerator};
use spc_engine::{build_engine, Verdict};
use spc_types::Header;

const BATCH: usize = 4096;
const LOCALITIES: [f64; 3] = [0.5, 0.9, 0.99];
const FLOWS: [usize; 2] = [1024, 8192];
const INNER: &str = "configurable-bst";

fn local_trace(rules: &spc_types::RuleSet, locality: f64) -> Vec<Header> {
    TraceGenerator::new()
        .seed(SEED_TRACE)
        .match_fraction(0.9)
        .locality(locality)
        .generate(rules, BATCH)
}

fn bench_flow_cache(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, scale_or(8192));
    let mut out: Vec<Verdict> = Vec::new();

    let mut group = c.benchmark_group("flow_cache/locality");
    for locality in LOCALITIES {
        let t = local_trace(&rules, locality);
        group.throughput(Throughput::Elements(BATCH as u64));
        let mut inner = build_engine(INNER, &rules).expect("inner must build");
        group.bench_with_input(BenchmarkId::new("uncached", locality), &t, |b, t| {
            b.iter(|| inner.classify_batch(t, &mut out).hits);
        });
        for flows in FLOWS {
            let spec = format!("cached:inner={INNER},flows={flows}");
            let mut engine = build_engine(&spec, &rules).expect("cached must build");
            engine.classify_batch(&t, &mut out); // warm
            group.bench_with_input(
                BenchmarkId::new(format!("flows{flows}"), locality),
                &t,
                |b, t| b.iter(|| engine.classify_batch(t, &mut out).hits),
            );
        }
    }
    group.finish();

    // Steady-state churn: every iteration classifies the batch, then
    // pushes one insert + one remove through the wrapper — so the
    // targeted-invalidation path (and the partial cold-start it leaves
    // behind) is inside the measured loop.
    let mut group = c.benchmark_group("flow_cache/churn");
    let pool = ruleset(FilterKind::Fw, 64);
    let t = local_trace(&rules, 0.9);
    group.throughput(Throughput::Elements(BATCH as u64));
    for flows in FLOWS {
        let spec = format!("cached:inner={INNER},flows={flows}");
        let mut engine = build_engine(&spec, &rules).expect("cached must build");
        engine.classify_batch(&t, &mut out);
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::new("insert_remove", flows), &t, |b, t| {
            b.iter(|| {
                let hits = engine.classify_batch(t, &mut out).hits;
                let mut rule = pool.rules()[next % pool.len()];
                rule.priority = spc_types::Priority(2_000_000 + next as u32);
                next += 1;
                if let Ok(id) = engine.insert(rule) {
                    engine.remove(id).expect("fresh rule removes");
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_cache);
criterion_main!(benches);
