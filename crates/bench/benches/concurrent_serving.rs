//! Criterion bench: classify throughput *during* sustained churn — the
//! question `snapshot:` exists to answer (see `docs/concurrency.md`).
//!
//! Two arms per inner spec, same probe trace, same scripted churn
//! replayed in a background thread until the measurement stops:
//!
//! * **snapshot** — a `SnapshotReader` classifies lock-free against the
//!   current published version while the `SnapshotEngine` writer
//!   rebuilds-and-publishes each scripted update off to the side.
//! * **mutex** — the same inner engine behind a `Mutex`, the
//!   conventional stop-the-world arrangement: the reader takes the lock
//!   per classify and blocks whenever the writer is mid-update.
//!
//! The churn is a net-zero [`ScenarioScript`] (`insert 8; remove 8`
//! bursts from a high-priority foreign pool), driven event by event so
//! both arms apply the identical update sequence — the snapshot writer
//! directly, the mutex writer one lock acquisition per update.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{
    criterion_group, criterion_main, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use spc_bench::{ruleset, trace, traffic};
use spc_classbench::{FilterKind, RuleSetGenerator, ScenarioScript, TraceEvent, TraceSource};
use spc_engine::{build_engine, EngineBuilder, PacketClassifier};
use spc_types::{Priority, Rule, RuleId, RuleSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

const BASE_RULES: usize = 1024;
const PROBES: usize = 1024;
const SCRIPT: &str = "repeat 4 { insert 8; remove 8 }";

/// One update drawn from the scripted churn, ready to apply.
enum Op {
    Insert(Rule),
    Remove(RuleId),
}

/// A foreign (FW-family) pool with priorities past the base set, so the
/// scripted inserts are fresh rules for every arm; residual 5-tuple
/// collisions with the base surface as `Duplicate` and are skipped
/// identically everywhere.
fn churn_pool() -> Vec<Rule> {
    RuleSetGenerator::new(FilterKind::Fw, 32)
        .seed(spc_bench::SEED_RULES ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = Priority(1_000_000 + i as u32);
            r
        })
        .collect()
}

/// Replays the scenario's update events in a loop until `stop`,
/// applying each through `apply` (which returns the engine-assigned id
/// for inserts, `None` for a skipped duplicate).
fn churn(
    script: &ScenarioScript,
    base: &RuleSet,
    pool: &[Rule],
    stop: &AtomicBool,
    mut apply: impl FnMut(Op) -> Option<RuleId>,
) {
    while !stop.load(Ordering::Acquire) {
        let mut ids: Vec<Option<RuleId>> = Vec::new();
        let mut source = script
            .source(&traffic(), base, pool)
            .expect("scenario binds");
        while let Some(event) = source.next_event().expect("synthetic scenario cannot fail") {
            match event {
                TraceEvent::Insert(rule) => ids.push(apply(Op::Insert(rule))),
                TraceEvent::Remove { insert } => {
                    if let Some(id) = ids.get(insert).copied().flatten() {
                        apply(Op::Remove(id));
                    }
                }
                TraceEvent::Headers(_) => {} // the churn script never classifies
            }
        }
        thread::yield_now();
    }
}

/// Benches both arms for one inner spec.
fn run_pair(
    group: &mut BenchmarkGroup<'_>,
    inner: &str,
    base: &RuleSet,
    probes: &[spc_types::Header],
    pool: &[Rule],
    script: &ScenarioScript,
) {
    // Arm 1: snapshot readers never block during churn.
    {
        let spec = format!("snapshot:inner=({inner})");
        let mut engine = EngineBuilder::from_spec(&spec)
            .expect("valid snapshot spec")
            .build_snapshot(base)
            .expect("base set builds");
        let mut reader = engine.reader();
        let stop = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                churn(script, base, pool, &stop, |op| match op {
                    Op::Insert(r) => engine.insert(r).ok(),
                    Op::Remove(id) => {
                        engine.remove(id).expect("tracked rule removes");
                        None
                    }
                });
            });
            group.bench_function(BenchmarkId::new("during_churn", &spec), |b| {
                b.iter(|| {
                    let mut last = None;
                    for h in probes {
                        last = reader.classify(h).rule;
                    }
                    last
                });
            });
            stop.store(true, Ordering::Release);
        });
    }

    // Arm 2: the same inner behind a mutex — readers stop for the world.
    {
        let locked: Mutex<Box<dyn PacketClassifier>> =
            Mutex::new(build_engine(inner, base).unwrap_or_else(|e| panic!("{inner}: {e}")));
        let stop = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                churn(script, base, pool, &stop, |op| match op {
                    Op::Insert(r) => locked.lock().unwrap().insert(r).ok(),
                    Op::Remove(id) => {
                        locked
                            .lock()
                            .unwrap()
                            .remove(id)
                            .expect("tracked rule removes");
                        None
                    }
                });
            });
            group.bench_function(
                BenchmarkId::new("during_churn", format!("mutex:{inner}")),
                |b| {
                    b.iter(|| {
                        let mut last = None;
                        for h in probes {
                            last = locked.lock().unwrap().classify(h).rule;
                        }
                        last
                    });
                },
            );
            stop.store(true, Ordering::Release);
        });
    }
}

fn bench_concurrent_serving(c: &mut Criterion) {
    let base = ruleset(FilterKind::Acl, BASE_RULES);
    let probes = trace(&base, PROBES);
    let pool = churn_pool();
    let script = ScenarioScript::parse(SCRIPT).expect("valid churn script");

    let mut group = c.benchmark_group("concurrent_serving");
    group.throughput(Throughput::Elements(PROBES as u64));
    group.sample_size(10);
    // A sharded inner additionally exercises the touched-shard-only
    // rebuild: untouched shard Arcs are reused across versions.
    for inner in [
        "configurable-bst",
        "sharded:inner=configurable-bst,shards=4,strategy=prio",
    ] {
        run_pair(&mut group, inner, &base, &probes, &pool, &script);
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_serving);
criterion_main!(benches);
