//! Criterion bench: incremental rule insert/remove rate (§V.A), MBT vs
//! BST — the BST pays its software rebuild on every flush — plus the
//! registry-level churn sweep across every updatable backend, so the
//! paper's update story is measured against tuple-space search and the
//! software TCAM through the same `PacketClassifier` API.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use spc_bench::ruleset;
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, IpAlg};

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.sample_size(20);
    let base = ruleset(FilterKind::Acl, 1000);
    let churn = ruleset(FilterKind::Acl, 1200);
    for alg in [IpAlg::Mbt, IpAlg::Bst] {
        let mut cfg = ArchConfig::large().with_ip_alg(alg);
        cfg.rule_filter_addr_bits = 14;
        let mut cls = Classifier::new(cfg);
        cls.load(&base).expect("fits");
        let extra: Vec<_> = churn
            .rules()
            .iter()
            .skip(1000)
            .take(64)
            .enumerate()
            .map(|(i, r)| {
                let mut r = *r;
                r.priority = spc_types::Priority(50_000 + i as u32);
                r
            })
            .collect();
        group.bench_function(BenchmarkId::new("insert_remove", alg.to_string()), |b| {
            b.iter_batched(
                || extra.clone(),
                |rules| {
                    let mut ids = Vec::new();
                    for r in rules {
                        if let Ok(rep) = cls.insert(r) {
                            ids.push(rep.rule_id);
                        }
                    }
                    for id in ids {
                        cls.remove(id).unwrap();
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The same 64-insert/64-remove churn burst through the unified engine
/// API: the configurable architecture next to the update-first
/// backends (`tss`, `tcam`) it is framed against.
fn bench_update_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_engines");
    group.sample_size(20);
    let base = ruleset(FilterKind::Acl, 1000);
    let churn = ruleset(FilterKind::Acl, 1200);
    let extra: Vec<_> = churn
        .rules()
        .iter()
        .skip(1000)
        .take(64)
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = spc_types::Priority(50_000 + i as u32);
            r
        })
        .collect();
    for spec in ["configurable-mbt", "configurable-bst", "tss", "tcam"] {
        let mut engine = spc_engine::build_engine(spec, &base).expect("spec builds");
        assert!(engine.supports_updates(), "{spec}");
        group.bench_function(BenchmarkId::new("insert_remove", spec), |b| {
            b.iter_batched(
                || extra.clone(),
                |rules| {
                    let mut ids = Vec::new();
                    for r in rules {
                        if let Ok(id) = engine.insert(r) {
                            ids.push(id);
                        }
                    }
                    for id in ids {
                        engine.remove(id).unwrap();
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update, bench_update_engines);
criterion_main!(benches);
