//! Criterion bench: software lookup speed of the Table I baselines.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_baselines::{Baseline, Dcfl, HyperCuts, LinearSearch, OptionClassifier, OptionKind, Rfc};
use spc_bench::{ruleset, trace};
use spc_classbench::FilterKind;

fn bench_baselines(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, 2000);
    let t = trace(&rules, 512);
    let classifiers: Vec<Box<dyn Baseline>> = vec![
        Box::new(LinearSearch::build(&rules)),
        Box::new(HyperCuts::build(&rules, Default::default())),
        Box::new(Rfc::build(&rules, 1 << 26).expect("cap ok at 2K")),
        Box::new(Dcfl::build(&rules)),
        Box::new(OptionClassifier::build(&rules, OptionKind::One)),
        Box::new(OptionClassifier::build(&rules, OptionKind::Two)),
    ];
    let mut group = c.benchmark_group("baselines");
    group.throughput(Throughput::Elements(t.len() as u64));
    for cls in &classifiers {
        group.bench_with_input(BenchmarkId::from_parameter(cls.name()), &t, |b, t| {
            b.iter(|| {
                let mut acc = 0u64;
                for h in t {
                    acc += u64::from(cls.classify(h).accesses);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
