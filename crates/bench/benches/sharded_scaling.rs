//! Criterion bench: sharded batch throughput as a function of shard
//! count × batch size, on an 8k-rule ACL set — the data behind the
//! "first multiplier toward millions-of-users scale" claim. The
//! unsharded inner engine (shards=1) is the baseline in every group, so
//! the scaling factor is read straight off the report.
//!
//! `SPC_SCALE` overrides the rule count; `--test` (as in CI's
//! bench-smoke job) runs every body once.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_bench::{ruleset, scale_or, trace};
use spc_classbench::FilterKind;
use spc_engine::{EngineBuilder, PacketClassifier, Verdict};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH_SIZES: [usize; 2] = [512, 4096];

fn build_sharded(
    rules: &spc_types::RuleSet,
    shards: usize,
    strategy: &str,
) -> Box<dyn PacketClassifier> {
    EngineBuilder::from_spec(&format!(
        "sharded:inner=configurable-bst,shards={shards},strategy={strategy}"
    ))
    .expect("valid spec")
    .build(rules)
    .expect("8k-rule ACL fits the sharded configurable backend")
}

fn bench_sharded_scaling(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, scale_or(8192));
    let full = trace(&rules, *BATCH_SIZES.iter().max().unwrap());
    for strategy in ["prio", "hash"] {
        let mut group = c.benchmark_group(format!("sharded_scaling/{strategy}"));
        for shards in SHARD_COUNTS {
            let mut engine = build_sharded(&rules, shards, strategy);
            let mut out: Vec<Verdict> = Vec::new();
            for batch in BATCH_SIZES {
                let t = &full[..batch];
                group.throughput(Throughput::Elements(batch as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("shards{shards}"), batch),
                    &t,
                    |b, t| b.iter(|| engine.classify_batch(t, &mut out).hits),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sharded_scaling);
criterion_main!(benches);
