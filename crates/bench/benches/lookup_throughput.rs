//! Criterion bench: classify throughput, MBT vs BST configurations
//! (software wall-clock; the hardware model numbers are the table bins).

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_bench::{ruleset, trace};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, CombineStrategy, IpAlg};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    for alg in [IpAlg::Mbt, IpAlg::Bst] {
        for n in [1000usize, 4000] {
            let rules = ruleset(FilterKind::Acl, n);
            let mut cfg = ArchConfig::large()
                .with_ip_alg(alg)
                .with_combine(CombineStrategy::FirstLabel);
            cfg.rule_filter_addr_bits = 14;
            let mut cls = Classifier::new(cfg);
            cls.load(&rules).expect("fits");
            let t = trace(&rules, 1024);
            group.throughput(Throughput::Elements(t.len() as u64));
            group.bench_with_input(BenchmarkId::new(format!("{alg}"), n), &t, |b, t| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for h in t {
                        hits += usize::from(cls.classify(h).hit.is_some());
                    }
                    hits
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
