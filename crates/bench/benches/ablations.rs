//! Criterion ablations over the design choices DESIGN.md calls out:
//! combination strategy (the paper's single-probe fast path versus the
//! exact priority probe) and MBT leaf provisioning.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_bench::{ruleset, trace};
use spc_classbench::FilterKind;
use spc_core::{ArchConfig, Classifier, CombineStrategy};

fn bench_combine_strategy(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, 2000);
    let t = trace(&rules, 256);
    let mut group = c.benchmark_group("combine_strategy");
    group.throughput(Throughput::Elements(t.len() as u64));
    for strat in [CombineStrategy::FirstLabel, CombineStrategy::PriorityProbe] {
        let mut cfg = ArchConfig::large().with_combine(strat);
        cfg.rule_filter_addr_bits = 14;
        let mut cls = Classifier::new(cfg);
        cls.load(&rules).expect("fits");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strat:?}")),
            &t,
            |b, t| {
                b.iter(|| {
                    let mut probes = 0u64;
                    for h in t {
                        probes += u64::from(cls.classify(h).combos_probed);
                    }
                    probes
                });
            },
        );
    }
    group.finish();
}

fn bench_mbt_leaf_nodes(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, 1000);
    let t = trace(&rules, 512);
    let mut group = c.benchmark_group("mbt_leaf_nodes");
    group.throughput(Throughput::Elements(t.len() as u64));
    for leaf in [384usize, 512, 1024] {
        let mut cfg = ArchConfig::large().with_combine(CombineStrategy::FirstLabel);
        cfg.mbt_leaf_nodes = leaf;
        cfg.rule_filter_addr_bits = 14;
        let mut cls = Classifier::new(cfg);
        cls.load(&rules).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(leaf), &t, |b, t| {
            b.iter(|| {
                let mut hits = 0usize;
                for h in t {
                    hits += usize::from(cls.classify(h).hit.is_some());
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_combine_strategy, bench_mbt_leaf_nodes);
criterion_main!(benches);
