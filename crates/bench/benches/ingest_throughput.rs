//! Criterion bench: `IngestPipeline` batch throughput on a *non-sharded*
//! backend as a function of worker count, on an 8k-rule ACL set — the
//! measurement behind the "any engine can be driven from a header
//! stream" claim. The sequential `classify_batch` of a single engine is
//! the baseline in every group, so the scaling factor is read straight
//! off the report; replicated (per-worker clone) and shared (`Arc`)
//! sources are benchmarked side by side since they are the pipeline's
//! central trade-off.
//!
//! `SPC_SCALE` overrides the rule count; `--test` (as in CI's
//! bench-smoke job) runs every body once.

// Reproduction harness: a panic here means the bench environment itself
// is broken (bad spec string, generator misconfiguration), and aborting
// with the site's message is the correct response — there is no caller
// to hand a typed error to.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spc_bench::{ruleset, scale_or, trace, trace_source};
use spc_classbench::FilterKind;
use spc_engine::{
    EngineBuilder, EngineSource, IngestConfig, IngestPipeline, PacketClassifier, Verdict,
};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 8192;
const SPEC: &str = "configurable-bst";

fn bench_ingest_throughput(c: &mut Criterion) {
    let rules = ruleset(FilterKind::Acl, scale_or(8192));
    let t = trace(&rules, BATCH);
    let builder = EngineBuilder::from_spec(SPEC).expect("valid spec");

    let mut group = c.benchmark_group("ingest_throughput");
    group.throughput(Throughput::Elements(t.len() as u64));

    // Baseline: one engine, sequential amortised batch path.
    let mut sequential = builder.build(&rules).expect("8k-rule ACL fits");
    let mut out: Vec<Verdict> = Vec::new();
    group.bench_with_input(BenchmarkId::new("sequential", SPEC), &t, |b, t| {
        b.iter(|| sequential.classify_batch(t, &mut out).hits);
    });

    // Replicated engines: each worker owns a clone and runs the
    // amortised batch path with private scratch.
    for workers in WORKER_COUNTS {
        let source = EngineSource::replicated(&builder, &rules, workers).expect("replicas build");
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers,
                queue_chunks: 2 * workers,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        group.bench_with_input(
            BenchmarkId::new("cloned", format!("workers{workers}")),
            &t,
            |b, t| b.iter(|| pipe.run_batch(t, &mut out).hits),
        );
    }

    // Streaming from a lazy TraceSource (headers generated on the fly,
    // chunk by chunk, under the queue's backpressure) instead of a
    // pre-materialised batch — the generation cost is part of the
    // measurement, which is exactly the replay-a-capture shape.
    for workers in WORKER_COUNTS {
        let source = EngineSource::replicated(&builder, &rules, workers).expect("replicas build");
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers,
                queue_chunks: 2 * workers,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        group.bench_function(
            BenchmarkId::new("streamed", format!("workers{workers}")),
            |b| {
                b.iter(|| {
                    let mut src = trace_source(&rules, BATCH);
                    pipe.run_source(&mut src, &mut out)
                        .expect("classify-only source")
                        .hits
                });
            },
        );
    }

    // Shared engine behind `Arc`: lowest memory, single-shot lookups.
    for workers in WORKER_COUNTS {
        let engine: Arc<dyn PacketClassifier> =
            Arc::from(builder.build(&rules).expect("8k-rule ACL fits"));
        let mut pipe = IngestPipeline::spawn(
            EngineSource::Shared(engine),
            IngestConfig {
                workers,
                queue_chunks: 2 * workers,
                chunk: 1024,
            },
        )
        .expect("valid pipeline config");
        group.bench_with_input(
            BenchmarkId::new("shared", format!("workers{workers}")),
            &t,
            |b, t| b.iter(|| pipe.run_batch(t, &mut out).hits),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_ingest_throughput);
criterion_main!(benches);
