//! Umbrella crate for the SOCC 2014 configurable packet classification
//! architecture reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`types`] — rules, headers, prefixes, ranges ([`spc_types`])
//! * [`classbench`] — seeded ACL/FW/IPC rule-set and trace generators
//! * [`hwsim`] — memory-block / cycle / throughput hardware model
//! * [`lookup`] — single-field lookup engines with the DCFL label method
//! * [`core`] — the configurable classifier architecture itself
//! * [`baselines`] — linear search, HyperCuts, RFC, DCFL comparators
//! * [`engine`] — the unified [`engine::PacketClassifier`] API over all of
//!   the above: one trait, batch lookups, a backend registry, and the
//!   [`engine::CachedEngine`] flow verdict cache (microflow + megaflow)
//!   that can wrap any backend
//! * [`analyze`] — static rule-set analysis: shadowing, duplicates,
//!   label-pressure and port-expansion findings ([`spc_analyze`])
//! * [`tuplespace`] — the update-first structures behind the `tss:` and
//!   `tcam:` registry backends: tuple-space search and the software TCAM
//!   ([`spc_tuplespace`])
//!
//! # Quickstart
//!
//! Build any backend from the [`engine::EngineKind`] registry, install
//! rules, and classify single headers or whole batches through one API:
//!
//! ```
//! use spc::engine::{EngineBuilder, EngineKind, PacketClassifier};
//! use spc::types::{Action, Header, PortRange, Prefix, Priority, ProtoSpec, Rule, RuleSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rules = RuleSet::from_rules(vec![Rule::builder(Priority(0))
//!     .src_ip(Prefix::parse("10.0.0.0/8")?)
//!     .dst_port(PortRange::exact(80))
//!     .proto(ProtoSpec::Exact(6))
//!     .action(Action::Forward(1))
//!     .build()]);
//!
//! // The paper's configurable architecture, MBT (speed) mode...
//! let mut engine = EngineBuilder::new(EngineKind::ConfigurableMbt).build(&rules)?;
//! let hdr = Header::new([10, 1, 2, 3].into(), [1, 2, 3, 4].into(), 999, 80, 6);
//! assert_eq!(engine.classify(&hdr).action, Some(Action::Forward(1)));
//!
//! // ...incremental updates through the same trait (capability-probed)...
//! assert!(engine.supports_updates());
//! let id = engine.insert(Rule::builder(Priority(1)).action(Action::Drop).build())?;
//! engine.remove(id)?;
//!
//! // ...and amortised batch lookups with aggregate accounting.
//! let batch = vec![hdr; 64];
//! let mut verdicts = Vec::new();
//! let stats = engine.classify_batch(&batch, &mut verdicts);
//! assert_eq!(stats.hits, 64);
//!
//! // Every other backend (linear, HyperCuts, RFC, DCFL, Option 1/2,
//! // configurable-BST) builds from the same registry, e.g. by spec string:
//! let oracle = spc::engine::build_engine("linear", &rules)?;
//! assert_eq!(oracle.classify(&hdr).rule, verdicts[0].rule);
//! # Ok(())
//! # }
//! ```

pub use spc_analyze as analyze;
pub use spc_baselines as baselines;
pub use spc_classbench as classbench;
pub use spc_core as core;
pub use spc_engine as engine;
pub use spc_hwsim as hwsim;
pub use spc_lookup as lookup;
pub use spc_tuplespace as tuplespace;
pub use spc_types as types;

// The flow-cache vocabulary, re-exported at the root: what a verdict
// matched ([`MatchHandle`]) and the per-dimension wildcard summary it
// carries ([`MaskSummary`]) are API surface for any downstream cache or
// invalidation logic, not an engine-internal detail.
pub use spc_engine::{CacheStats, CachedEngine, MatchHandle, SnapshotEngine, SnapshotReader};
pub use spc_types::MaskSummary;
