//! Umbrella crate for the SOCC 2014 configurable packet classification
//! architecture reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`types`] — rules, headers, prefixes, ranges ([`spc_types`])
//! * [`classbench`] — seeded ACL/FW/IPC rule-set and trace generators
//! * [`hwsim`] — memory-block / cycle / throughput hardware model
//! * [`lookup`] — single-field lookup engines with the DCFL label method
//! * [`core`] — the configurable classifier architecture itself
//! * [`baselines`] — linear search, HyperCuts, RFC, DCFL comparators
//!
//! # Quickstart
//!
//! ```
//! use spc::core::{Classifier, ArchConfig, IpAlg};
//! use spc::types::{Rule, Priority, Prefix, PortRange, ProtoSpec, Action, Header};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cls = Classifier::new(ArchConfig::default().with_ip_alg(IpAlg::Mbt));
//! let rule = Rule::builder(Priority(0))
//!     .src_ip(Prefix::parse("10.0.0.0/8")?)
//!     .dst_port(PortRange::exact(80))
//!     .proto(ProtoSpec::Exact(6))
//!     .action(Action::Forward(1))
//!     .build();
//! let id = cls.insert(rule)?.rule_id;
//! let hdr = Header::new([10, 1, 2, 3].into(), [1, 2, 3, 4].into(), 999, 80, 6);
//! let hit = cls.classify(&hdr).hit.expect("should match");
//! assert_eq!(hit.rule_id, id);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use spc_baselines as baselines;
pub use spc_classbench as classbench;
pub use spc_core as core;
pub use spc_hwsim as hwsim;
pub use spc_lookup as lookup;
pub use spc_types as types;
