//! Quickstart: build a classifier, install rules, classify packets.
//!
//! Run with `cargo run --release --example quickstart`.

use spc::core::{ArchConfig, Classifier, IpAlg};
use spc::types::{Action, Header, PortRange, Prefix, Priority, ProtoSpec, Rule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's prototype configuration: MBT IP lookup, 13/7/2-bit
    // labels, 133.51 MHz clock.
    let mut cls = Classifier::new(ArchConfig::paper_prototype().with_ip_alg(IpAlg::Mbt));

    // A tiny ACL: drop telnet, steer web traffic, default-drop 10/8.
    let rules = [
        Rule::builder(Priority(0))
            .dst_port(PortRange::exact(23))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Drop)
            .build(),
        Rule::builder(Priority(1))
            .src_ip(Prefix::parse("10.0.0.0/8")?)
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(1))
            .build(),
        Rule::builder(Priority(2))
            .src_ip(Prefix::parse("10.0.0.0/8")?)
            .action(Action::ToController)
            .build(),
    ];
    for r in rules {
        let rep = cls.insert(r)?;
        println!("installed {} (+{} labels, {} hw write cycles)", rep.rule_id,
                 rep.created_labels, rep.hw_write_cycles);
    }

    let packets = [
        Header::new([10, 1, 2, 3].into(), [192, 168, 0, 1].into(), 5555, 23, 6),
        Header::new([10, 1, 2, 3].into(), [192, 168, 0, 1].into(), 5555, 80, 6),
        Header::new([10, 9, 9, 9].into(), [192, 168, 0, 1].into(), 5555, 443, 6),
        Header::new([11, 1, 1, 1].into(), [192, 168, 0, 1].into(), 5555, 80, 6),
    ];
    for h in &packets {
        let c = cls.classify(h);
        match c.hit {
            Some(hit) => println!(
                "{h}  ->  {} via {} (latency {} cycles, II {})",
                hit.rule.action,
                hit.rule_id,
                c.timing.latency_cycles(),
                c.timing.initiation_interval
            ),
            None => println!("{h}  ->  table miss"),
        }
    }

    let t = cls.classify(&packets[1]).timing;
    println!(
        "\nline rate at 40 B packets: {:.2} Gbps ({:.1} M lookups/s)",
        t.throughput_gbps(cls.config().clock, 40),
        t.lookups_per_sec(cls.config().clock) / 1e6
    );
    Ok(())
}
