//! Quickstart: build an engine from the registry, install rules through
//! the unified `PacketClassifier` API, classify packets one at a time and
//! as a batch.
//!
//! Run with `cargo run --release --example quickstart`.

use spc::engine::{EngineBuilder, EngineKind, PacketClassifier, Verdict};
use spc::types::{Action, Header, PortRange, Prefix, Priority, ProtoSpec, Rule, RuleSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's configurable architecture in MBT (speed) mode. Any
    // other registry backend would serve the same calls.
    let mut engine: Box<dyn PacketClassifier> =
        EngineBuilder::new(EngineKind::ConfigurableMbt).build(&RuleSet::new())?;

    // A tiny ACL: drop telnet, steer web traffic, default-drop 10/8 —
    // installed through the trait's incremental-update path.
    assert!(
        engine.supports_updates(),
        "the configurable architecture updates in place"
    );
    let rules = [
        Rule::builder(Priority(0))
            .dst_port(PortRange::exact(23))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Drop)
            .build(),
        Rule::builder(Priority(1))
            .src_ip(Prefix::parse("10.0.0.0/8")?)
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(1))
            .build(),
        Rule::builder(Priority(2))
            .src_ip(Prefix::parse("10.0.0.0/8")?)
            .action(Action::ToController)
            .build(),
    ];
    for r in rules {
        let id = engine.insert(r)?;
        println!("installed {id} on {}", engine.name());
    }

    let packets = [
        Header::new([10, 1, 2, 3].into(), [192, 168, 0, 1].into(), 5555, 23, 6),
        Header::new([10, 1, 2, 3].into(), [192, 168, 0, 1].into(), 5555, 80, 6),
        Header::new([10, 9, 9, 9].into(), [192, 168, 0, 1].into(), 5555, 443, 6),
        Header::new([11, 1, 1, 1].into(), [192, 168, 0, 1].into(), 5555, 80, 6),
    ];
    for h in &packets {
        match engine.classify(h) {
            Verdict {
                action: Some(action),
                rule: Some(id),
                mem_reads,
                ..
            } => {
                println!("{h}  ->  {action} via {id} ({mem_reads} memory reads)");
            }
            v => println!("{h}  ->  table miss ({} memory reads)", v.mem_reads),
        }
    }

    // The batch path reuses scratch buffers and aggregates accounting.
    let batch: Vec<Header> = packets.iter().cycle().take(4096).copied().collect();
    let mut verdicts = Vec::new();
    let stats = engine.classify_batch(&batch, &mut verdicts);
    println!(
        "\nbatch of {}: {:.1}% hits, {:.2} memory reads/packet, {} rule-filter probes",
        stats.packets,
        100.0 * stats.hit_rate(),
        stats.avg_mem_reads(),
        stats.combos_probed,
    );
    println!(
        "engine memory: {} bits for {} rules",
        engine.memory_bits(),
        engine.rules()
    );
    Ok(())
}
