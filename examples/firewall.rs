//! Firewall workload: replay a captured traffic trace against a
//! FW-style rule set through the unified engine API and account
//! actions + lookup cost.
//!
//! The traffic takes the captured-traffic path end to end: a synthetic
//! trace is exported to a classic pcap file (as if tcpdump had been
//! running at the tap), then the capture is replayed through
//! `PcapReader` — the `TraceSource` every engine harness consumes — and
//! the verdicts are checked to be identical to classifying the
//! original trace.
//!
//! Run with `cargo run --release --example firewall`.

use spc::classbench::TraceSource;
use spc::classbench::{write_pcap, FilterKind, PcapReader, RuleSetGenerator, TraceGenerator};
use spc::engine::build_engine;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An enterprise-scale firewall policy. A security middlebox needs the
    // exact HPMR, so this example runs the PriorityProbe strategy; its
    // cross-product probing cost on wildcard-heavy FW rules is reported
    // honestly below (the paper's single-probe fast path — spec option
    // `combine=first` — is cheaper but approximate).
    let rules = RuleSetGenerator::new(FilterKind::Fw, 500)
        .seed(7)
        .generate();
    let mut engine = build_engine("configurable-mbt:rf_bits=14,combine=probe", &rules)?;
    println!(
        "firewall with {} rules loaded on {}",
        engine.rules(),
        engine.name()
    );

    // "Capture" the traffic at the tap: stream 5 000 synthetic headers
    // (with flow locality) straight into a pcap file...
    let workload = TraceGenerator::new()
        .seed(42)
        .match_fraction(0.85)
        .locality(0.3);
    let capture = std::env::temp_dir().join(format!("spc_firewall_{}.pcap", std::process::id()));
    let captured = write_pcap(&capture, workload.stream(&rules, 5_000))?;
    println!("captured {captured} packets to {}", capture.display());

    // ...and replay the capture into the classifier.
    let mut reader = PcapReader::open(&capture)?;
    let trace = (&mut reader).collect_headers()?;
    println!(
        "replayed {} packets ({} non-IPv4 skipped)",
        reader.packets(),
        reader.skipped()
    );
    std::fs::remove_file(&capture)?;

    // One batch call: verdicts for the action breakdown, stats for cost.
    let mut verdicts = Vec::new();
    let stats = engine.classify_batch(&trace, &mut verdicts);

    let mut actions: BTreeMap<String, usize> = BTreeMap::new();
    let mut misses = 0usize;
    for v in &verdicts {
        match v.action {
            Some(a) => *actions.entry(a.to_string()).or_insert(0) += 1,
            None => misses += 1,
        }
    }
    println!("\naction breakdown over {} packets:", stats.packets);
    for (a, n) in &actions {
        println!("  {a:<16} {n}");
    }
    println!("  {:<16} {misses} (default-drop)", "miss");

    println!(
        "\navg {:.1} memory reads/packet; {:.2} rule-filter combinations probed/packet",
        stats.avg_mem_reads(),
        stats.combos_probed as f64 / stats.packets as f64,
    );

    // The capture round-trips: replayed traffic is the original trace.
    let original = workload.generate(&rules, 5_000);
    assert_eq!(trace, original, "pcap replay must reproduce the capture");

    // PriorityProbe is exact by construction: verify against the oracle
    // backend through the same API.
    let oracle = build_engine("linear", &rules)?;
    let exact = trace
        .iter()
        .zip(&verdicts)
        .filter(|(h, v)| oracle.classify(h).rule == v.rule)
        .count();
    println!(
        "exact-HPMR rate vs oracle: {:.1}% (PriorityProbe is exact by construction)",
        100.0 * exact as f64 / trace.len() as f64
    );
    assert_eq!(exact, trace.len());
    // Sanity: a default-drop firewall must never forward unmatched traffic.
    assert!(misses + actions.values().sum::<usize>() == trace.len());
    Ok(())
}
