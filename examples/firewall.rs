//! Firewall workload: classify a traffic trace against a FW-style rule
//! set and account actions + line-rate throughput.
//!
//! Run with `cargo run --release --example firewall`.

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::core::{ArchConfig, Classifier, CombineStrategy};
use spc::types::Action;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An enterprise-scale firewall policy. A security middlebox needs the
    // exact HPMR, so this example runs the PriorityProbe strategy; its
    // cross-product probing cost on wildcard-heavy FW rules is reported
    // honestly below (the paper's single-probe fast path is cheaper but
    // approximate — see EXPERIMENTS.md and the combine_strategy bench).
    let rules = RuleSetGenerator::new(FilterKind::Fw, 500).seed(7).generate();
    let mut cls = Classifier::new(ArchConfig::large().with_combine(CombineStrategy::PriorityProbe));
    cls.load(&rules)?;
    println!("firewall with {} rules loaded", cls.len());

    let trace = TraceGenerator::new()
        .seed(42)
        .match_fraction(0.85)
        .locality(0.3)
        .generate(&rules, 5_000);

    let mut actions: BTreeMap<String, usize> = BTreeMap::new();
    let mut misses = 0usize;
    let mut exact = 0usize;
    let (mut ii_sum, mut reads_sum) = (0u64, 0u64);
    for h in &trace {
        let c = cls.classify(h);
        ii_sum += u64::from(c.timing.initiation_interval);
        reads_sum += u64::from(c.total_reads());
        debug_assert_eq!(c.hit.map(|x| x.rule_id), rules.classify(h).map(|(id, _)| id));
        exact += usize::from(c.hit.map(|x| x.rule_id) == rules.classify(h).map(|(id, _)| id));
        match c.hit {
            Some(hit) => *actions.entry(hit.rule.action.to_string()).or_insert(0) += 1,
            None => misses += 1,
        }
    }
    println!("\naction breakdown over {} packets:", trace.len());
    for (a, n) in &actions {
        println!("  {a:<16} {n}");
    }
    println!("  {:<16} {misses} (default-drop)", "miss");

    let avg_ii = ii_sum as f64 / trace.len() as f64;
    let clock = cls.config().clock;
    println!(
        "\navg initiation interval {:.2} cycles; avg {:.1} memory reads/packet",
        avg_ii,
        reads_sum as f64 / trace.len() as f64
    );
    println!(
        "modelled line rate: {:.2} Gbps @40 B, {:.2} Gbps @100 B",
        clock.throughput_gbps(avg_ii, 40),
        clock.throughput_gbps(avg_ii, 100)
    );
    println!(
        "exact-HPMR rate vs oracle: {:.1}% (PriorityProbe is exact by construction)",
        100.0 * exact as f64 / trace.len() as f64
    );
    // Sanity: a default-drop firewall must never forward unmatched traffic.
    assert!(misses + actions.values().sum::<usize>() == trace.len());
    let _ = Action::Drop;
    Ok(())
}
