//! Driving a single (non-sharded) engine from a header stream with the
//! generalised ingest pipeline: a bounded-queue, backpressure-aware
//! worker pool that is spawned once and fed for its whole life — no
//! per-batch thread spawn.
//!
//! The example builds an 8k-rule ACL policy, then compares three ways of
//! classifying the same traffic:
//!
//! 1. sequential `classify_batch` on one engine (the baseline);
//! 2. `IngestPipeline` over per-worker engine replicas (each worker runs
//!    the amortised batch path with private scratch);
//! 3. `IngestPipeline` over one shared read-only engine behind `Arc`
//!    (lowest memory; workers use the single-shot lookup path);
//!
//! and finishes with two streaming lifecycles: the explicit
//! `feed`/`drain` loop an SDN ingest path would use, and `run_source`,
//! which drives the pool straight from a lazy `TraceSource` — headers
//! are generated chunk by chunk under the bounded queue's backpressure,
//! never materialised. Verdicts are cross-checked between all paths.
//!
//! Run with `cargo run --release --example ingest_pipeline`.

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator, TraceSource};
use spc::engine::{
    EngineBuilder, EngineSource, IngestConfig, IngestPipeline, PacketClassifier, Verdict,
};
use std::sync::Arc;
use std::time::Instant;

const SPEC: &str = "configurable-bst";
const WORKERS: usize = 4;
const BATCH: usize = 16 * 1024;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = RuleSetGenerator::new(FilterKind::Acl, 8192)
        .seed(7)
        .generate();
    let workload = TraceGenerator::new().seed(8).match_fraction(0.9);
    // The materialised view of the workload, for the sequential baseline
    // and the oracle vector; every pipeline pass below streams instead.
    let traffic = workload.stream(&rules, BATCH).collect_headers()?;
    let builder = EngineBuilder::from_spec(SPEC)?;
    println!("{} rules ({SPEC}), {} headers", rules.len(), traffic.len());

    // 1. Baseline: one engine, sequential amortised batch path.
    let mut sequential = builder.build(&rules)?;
    let mut want: Vec<Verdict> = Vec::new();
    let t0 = Instant::now();
    let stats = sequential.classify_batch(&traffic, &mut want);
    let seq_s = t0.elapsed().as_secs_f64();
    println!(
        "sequential           {:>7.2} Melem/s  ({:.1}% hit)",
        traffic.len() as f64 / seq_s / 1e6,
        100.0 * stats.hit_rate()
    );

    // 2. Replicated: each worker owns a clone of the engine.
    let source = EngineSource::replicated(&builder, &rules, WORKERS)?;
    let mut pipe = IngestPipeline::spawn(
        source,
        IngestConfig {
            workers: WORKERS,
            queue_chunks: 2 * WORKERS,
            chunk: 1024,
        },
    )?;
    let mut out = Vec::new();
    pipe.run_batch(&traffic, &mut out); // warm-up + correctness pass
    assert_eq!(out, want, "pipeline must match the sequential verdicts");
    let t1 = Instant::now();
    pipe.run_batch(&traffic, &mut out);
    let cloned_s = t1.elapsed().as_secs_f64();
    println!(
        "cloned x{WORKERS}            {:>7.2} Melem/s  ({:.2}x)",
        traffic.len() as f64 / cloned_s / 1e6,
        seq_s / cloned_s
    );

    // 3. Shared: one read-only engine behind `Arc`, no replicas.
    let shared: Arc<dyn PacketClassifier> = Arc::from(builder.build(&rules)?);
    let mut shared_pipe = IngestPipeline::spawn(
        EngineSource::Shared(shared),
        IngestConfig {
            workers: WORKERS,
            queue_chunks: 2 * WORKERS,
            chunk: 1024,
        },
    )?;
    shared_pipe.run_batch(&traffic, &mut out);
    assert_eq!(out, want, "shared-engine verdicts must agree too");
    let t2 = Instant::now();
    shared_pipe.run_batch(&traffic, &mut out);
    let shared_s = t2.elapsed().as_secs_f64();
    println!(
        "shared x{WORKERS}            {:>7.2} Melem/s  ({:.2}x, 1x memory)",
        traffic.len() as f64 / shared_s / 1e6,
        seq_s / shared_s
    );

    // 4. Streaming lifecycle: feed bursts as they "arrive", drain when a
    // result window closes. The pool threads persist across rounds and a
    // full queue blocks `feed` (backpressure) instead of dropping.
    out.clear();
    let mut streamed = 0u64;
    for burst in traffic.chunks(3000) {
        pipe.feed(burst);
        streamed += pipe.drain(&mut out).packets;
    }
    assert_eq!(out, want, "streamed verdicts arrive in feed order");
    println!("streamed {streamed} headers in bursts through the same pool");

    // 5. TraceSource end to end: the pool pulls from a lazy synthetic
    // source — the same shape as replaying a pcap capture — so headers
    // are generated in chunks as queue slots free up, and the whole
    // trace never exists in memory at once.
    let mut source = workload.stream(&rules, BATCH).with_chunk(1024);
    let stats = pipe.run_source(&mut source, &mut out)?;
    assert_eq!(out, want, "sourced verdicts agree too");
    println!(
        "run_source classified {} headers straight from the generator",
        stats.packets
    );
    Ok(())
}
