//! Algorithm selection by application class (paper §III.A): the SDN
//! controller picks the backend per the application's critical parameter
//! — lookup speed for a multi-end videoconference, rule density for an
//! IoT policy, exactness for an audit tap — and the unified engine API
//! makes the sweep a loop over config strings.
//!
//! Run with `cargo run --release --example algorithm_selection`.

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator, TraceSource};
use spc::engine::build_engine;

struct AppProfile {
    name: &'static str,
    spec: &'static str,
    rules: usize,
    why: &'static str,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps = [
        AppProfile {
            name: "multi-end videoconferencing",
            spec: "configurable-mbt:rf_bits=14,combine=first",
            rules: 1500,
            why: "real-time: lookup speed is the critical parameter [11]",
        },
        AppProfile {
            name: "IoT micro-segmentation",
            spec: "configurable-bst:rf_bits=14,combine=first",
            rules: 6000,
            why: "large granular rule filter: density matters, latency doesn't",
        },
        AppProfile {
            name: "compliance audit tap",
            spec: "rfc",
            rules: 1500,
            why: "offline exactness at any memory cost",
        },
        AppProfile {
            name: "metro-core aggregation",
            spec: "sharded:inner=configurable-bst,shards=8,strategy=hash",
            rules: 8000,
            why: "rule count beyond one engine: shard by field hash, merge by priority",
        },
    ];
    for app in apps {
        let rules = RuleSetGenerator::new(FilterKind::Acl, app.rules)
            .seed(31)
            .generate();
        let mut engine = build_engine(app.spec, &rules)?;
        let trace = TraceGenerator::new()
            .seed(8)
            .stream(&rules, 5_000)
            .collect_headers()?;
        let mut verdicts = Vec::new();
        let stats = engine.classify_batch(&trace, &mut verdicts);
        println!("== {} ==", app.name);
        println!("   controller choice: {}  ({})", engine.name(), app.why);
        println!("   spec string:       {}", app.spec);
        println!("   rules installed:   {}", engine.rules());
        println!(
            "   lookup cost:       {:.2} memory reads/packet over {} packets",
            stats.avg_mem_reads(),
            stats.packets
        );
        println!(
            "   structure memory:  {:.0} Kbits ({})\n",
            engine.memory_bits() as f64 / 1000.0,
            if engine.supports_updates() {
                "updatable in place"
            } else {
                "rebuild to change"
            },
        );
    }
    println!("Same API, one spec string per application — the paper's configurability claim.");
    Ok(())
}
