//! Algorithm selection by application class (paper §III.A): the SDN
//! controller picks the lookup algorithm per the application's critical
//! parameter — speed for a multi-end videoconference, rule capacity for a
//! dense IoT policy — using the same hardware.
//!
//! Run with `cargo run --release --example algorithm_selection`.

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::core::{ArchConfig, Classifier, CombineStrategy, IpAlg};

struct AppProfile {
    name: &'static str,
    alg: IpAlg,
    rules: usize,
    why: &'static str,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let apps = [
        AppProfile {
            name: "multi-end videoconferencing",
            alg: IpAlg::Mbt,
            rules: 1500,
            why: "real-time: lookup speed is the critical parameter [11]",
        },
        AppProfile {
            name: "IoT micro-segmentation",
            alg: IpAlg::Bst,
            rules: 6000,
            why: "large granular rule filter: density matters, latency doesn't",
        },
    ];
    for app in apps {
        let rules = RuleSetGenerator::new(FilterKind::Acl, app.rules).seed(31).generate();
        let mut cfg = ArchConfig::large()
            .with_ip_alg(app.alg)
            .with_combine(CombineStrategy::FirstLabel);
        cfg.rule_filter_addr_bits = 14;
        let mut cls = Classifier::new(cfg);
        cls.load(&rules)?;
        let trace = TraceGenerator::new().seed(8).generate(&rules, 5_000);
        let mut ii = 0f64;
        for h in &trace {
            ii += f64::from(cls.classify(h).timing.initiation_interval);
        }
        ii /= trace.len() as f64;
        let clock = cls.config().clock;
        let rep = cls.memory_report();
        println!("== {} ==", app.name);
        println!("   controller choice: {}  ({})", app.alg, app.why);
        println!("   rules installed:   {}", cls.len());
        println!(
            "   throughput:        {:.2} Gbps @40 B ({:.1} M lookups/s)",
            clock.throughput_gbps(ii, 40),
            clock.lookups_per_sec(ii) / 1e6
        );
        println!(
            "   IP engine memory:  {:.0} Kbits used\n",
            rep.provisioned_where(|n| n.ends_with("/engine")
                && (n.starts_with("sip") || n.starts_with("dip"))) as f64
                / 1000.0
        );
    }
    println!("Same silicon, one select signal — the paper's configurability claim.");
    Ok(())
}
