//! SDN controller simulation: flow churn with fast incremental update and
//! a run-time `IPalg_s` reconfiguration (paper §IV.A, Fig 4), driven
//! through the unified engine API.
//!
//! The controller installs an initial service-chaining policy, then
//! runs a scripted churn scenario — bursts of flow installs, classify
//! windows, and tear-downs of expired flows — expressed as a
//! `ScenarioScript` and executed by the generic scenario runner; when
//! the application profile changes it flips the IP algorithm from MBT
//! (speed) to BST (density) — an architecture-specific control reached
//! through the configurable engine's accessor, with the data path
//! verified through the same unified API before and after.
//!
//! Run with `cargo run --release --example sdn_controller`.

use spc::classbench::{FilterKind, RuleSetGenerator, ScenarioScript, TraceGenerator, TraceSource};
use spc::core::{ArchConfig, Classifier, IpAlg};
use spc::engine::{run_scenario, ConfigurableEngine, PacketClassifier};
use spc::types::RuleId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ArchConfig::large();
    cfg.rule_filter_addr_bits = 14;
    let mut engine = ConfigurableEngine::new(Classifier::new(cfg));
    assert!(
        engine.supports_updates(),
        "rule churn needs the incremental path"
    );

    // Initial policy: 2K ACL-style flow rules pushed by the controller.
    let base = RuleSetGenerator::new(FilterKind::Acl, 2000)
        .seed(99)
        .generate();
    let ids: Vec<RuleId> = base
        .rules()
        .iter()
        .map(|r| engine.insert(*r))
        .collect::<Result<_, _>>()?;
    println!("installed {} rules on {}", ids.len(), engine.name());

    // Flow churn as a declarative scenario: five bursts of 60 flow
    // installs, each followed by a 400-packet classify window and the
    // expiry of the 30 oldest churned flows. The runner owns the
    // insert-index -> RuleId bookkeeping the hand-rolled loop used to.
    let churn_pool: Vec<_> = RuleSetGenerator::new(FilterKind::Acl, 600)
        .seed(123)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            // Re-prioritise churned flows behind the base policy.
            let mut r = *r;
            r.priority = spc::types::Priority(10_000 + i as u32);
            r
        })
        .collect();
    let script = ScenarioScript::parse("repeat 5 { insert 60; classify 400; remove 30 }")?;
    let mut source = script.source(&TraceGenerator::new().seed(4), &base, &churn_pool)?;
    let mut verdicts = Vec::new();
    let report = run_scenario(&mut engine, &mut source, &mut verdicts)?;
    println!(
        "churn scenario: +{} flows (-{} expired, {} duplicates skipped), \
         {} packets classified between bursts; {} rules live",
        report.inserts,
        report.removes,
        report.duplicates,
        report.lookup.packets,
        engine.rules()
    );
    println!(
        "update cost: {:.1} hw write cycles/op over {} ops (§V.A floor is 3)",
        report.update_cycles() as f64 / report.update_ops().max(1) as f64,
        report.update_ops()
    );

    // Application change: the controller now favours rule density. The
    // `IPalg_s` switch is the one architecture-specific control; the data
    // path stays behind the unified API.
    let trace = TraceGenerator::new()
        .seed(5)
        .stream(&base, 2_000)
        .collect_headers()?;
    let mut before = Vec::new();
    let stats_mbt = engine.classify_batch(&trace, &mut before);
    println!("\ncontroller: switching IPalg_s MBT -> BST (labels stay in place)...");
    engine.classifier_mut().set_ip_alg(IpAlg::Bst)?;
    let mut after = Vec::new();
    let stats_bst = engine.classify_batch(&trace, &mut after);
    assert!(
        before.iter().zip(&after).all(|(a, b)| a.rule == b.rule),
        "reconfiguration must be transparent to the data path"
    );
    println!(
        "verdicts identical across the switch; cost {:.1} -> {:.1} memory reads/packet ({})",
        stats_mbt.avg_mem_reads(),
        stats_bst.avg_mem_reads(),
        engine.name(),
    );
    engine.classifier_mut().set_ip_alg(IpAlg::Mbt)?;
    println!("switched back to {} for line-rate lookups", engine.name());
    Ok(())
}
