//! SDN controller simulation: flow churn with fast incremental update and
//! a run-time `IPalg_s` reconfiguration (paper §IV.A, Fig 4), driven
//! through the unified engine API.
//!
//! The controller installs an initial service-chaining policy, then
//! churns flows (insert + remove) through the trait's capability-probed
//! update path; when the application profile changes it flips the IP
//! algorithm from MBT (speed) to BST (density) — an
//! architecture-specific control reached through the configurable
//! engine's accessor, with the data path verified through the same
//! unified API before and after.
//!
//! Run with `cargo run --release --example sdn_controller`.

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::core::{ArchConfig, Classifier, IpAlg};
use spc::engine::{ConfigurableEngine, PacketClassifier, UpdateError};
use spc::types::RuleId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ArchConfig::large();
    cfg.rule_filter_addr_bits = 14;
    let mut engine = ConfigurableEngine::new(Classifier::new(cfg));
    assert!(
        engine.supports_updates(),
        "rule churn needs the incremental path"
    );

    // Initial policy: 2K ACL-style flow rules pushed by the controller.
    let base = RuleSetGenerator::new(FilterKind::Acl, 2000)
        .seed(99)
        .generate();
    let ids: Vec<RuleId> = base
        .rules()
        .iter()
        .map(|r| engine.insert(*r))
        .collect::<Result<_, _>>()?;
    println!("installed {} rules on {}", ids.len(), engine.name());

    // Churn: remove/insert bursts through the unified update path.
    let churn = RuleSetGenerator::new(FilterKind::Acl, 600)
        .seed(123)
        .generate();
    let mut removed = 0usize;
    for (i, id) in ids.iter().enumerate().take(300) {
        if i % 2 == 0 {
            engine.remove(*id)?;
            removed += 1;
        }
    }
    let mut inserted = 0usize;
    for r in churn.rules().iter().take(300) {
        // Re-prioritise churned rules behind the base policy.
        let mut r = *r;
        r.priority = spc::types::Priority(10_000 + inserted as u32);
        match engine.insert(r) {
            Ok(_) => inserted += 1,
            Err(UpdateError::Duplicate { .. }) => {} // churn overlap
            // Capacity and other rejections must surface, not be skipped.
            Err(e) => return Err(e.into()),
        }
    }
    println!(
        "churn: -{removed} rules, +{inserted} rules; {} rules live",
        engine.rules()
    );

    // Application change: the controller now favours rule density. The
    // `IPalg_s` switch is the one architecture-specific control; the data
    // path stays behind the unified API.
    let trace = TraceGenerator::new().seed(5).generate(&base, 2_000);
    let mut before = Vec::new();
    let stats_mbt = engine.classify_batch(&trace, &mut before);
    println!("\ncontroller: switching IPalg_s MBT -> BST (labels stay in place)...");
    engine.classifier_mut().set_ip_alg(IpAlg::Bst)?;
    let mut after = Vec::new();
    let stats_bst = engine.classify_batch(&trace, &mut after);
    assert!(
        before.iter().zip(&after).all(|(a, b)| a.rule == b.rule),
        "reconfiguration must be transparent to the data path"
    );
    println!(
        "verdicts identical across the switch; cost {:.1} -> {:.1} memory reads/packet ({})",
        stats_mbt.avg_mem_reads(),
        stats_bst.avg_mem_reads(),
        engine.name(),
    );
    engine.classifier_mut().set_ip_alg(IpAlg::Mbt)?;
    println!("switched back to {} for line-rate lookups", engine.name());
    Ok(())
}
