//! SDN controller simulation: flow churn with fast incremental update and
//! a run-time `IPalg_s` reconfiguration (paper §IV.A, Fig 4).
//!
//! A controller installs an initial service-chaining policy, then churns
//! flows (insert + remove) while tracking the hardware update cost; when
//! the rule count crosses a threshold it switches the IP algorithm from
//! MBT (speed) to BST (density) without touching label memories.
//!
//! Run with `cargo run --release --example sdn_controller`.

use spc::classbench::{FilterKind, RuleSetGenerator};
use spc::core::{ArchConfig, Classifier, IpAlg};
use spc::types::RuleId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ArchConfig::large();
    cfg.rule_filter_addr_bits = 14;
    let mut cls = Classifier::new(cfg);

    // Initial policy: 2K ACL-style flow rules pushed by the controller.
    let base = RuleSetGenerator::new(FilterKind::Acl, 2000).seed(99).generate();
    let ids = cls.load(&base)?;
    println!("installed {} rules ({} labels live across dims)", ids.len(),
             cls.live_labels().iter().sum::<usize>());

    // Churn: remove/insert bursts, measuring §V.A update costs.
    let churn = RuleSetGenerator::new(FilterKind::Acl, 600).seed(123).generate();
    let mut removed: Vec<RuleId> = Vec::new();
    let mut total_cycles = 0u64;
    let mut created = 0u64;
    let mut freed = 0u64;
    for (i, id) in ids.iter().enumerate().take(300) {
        if i % 2 == 0 {
            let (_, rep) = cls.remove(*id)?;
            total_cycles += rep.hw_write_cycles;
            freed += u64::from(rep.freed_labels);
            removed.push(*id);
        }
    }
    let mut inserted = 0usize;
    for r in churn.rules().iter().take(300) {
        // Re-prioritise churned rules behind the base policy.
        let mut r = *r;
        r.priority = spc::types::Priority(10_000 + inserted as u32);
        match cls.insert(r) {
            Ok(rep) => {
                total_cycles += rep.hw_write_cycles;
                created += u64::from(rep.created_labels);
                inserted += 1;
            }
            Err(spc::core::ClassifierError::DuplicateKey { .. }) => {} // churn overlap
            Err(e) => return Err(e.into()),
        }
    }
    println!(
        "churn: -150 rules, +{inserted} rules; {created} labels created, {freed} freed; \
         {total_cycles} hw write cycles total"
    );
    println!(
        "label sharing means an update touches far fewer memories than a rebuild: \
         {:.1} write cycles per rule op",
        total_cycles as f64 / (150 + inserted) as f64
    );

    // Application change: the controller now favours rule density.
    println!("\ncontroller: switching IPalg_s MBT -> BST (labels stay in place)...");
    cls.set_ip_alg(IpAlg::Bst)?;
    let h = spc::classbench::TraceGenerator::new().seed(5).generate(&base, 1)[0];
    let c = cls.classify(&h);
    println!(
        "post-switch lookup: II = {} cycles ({} mode), {} rules still installed",
        c.timing.initiation_interval,
        cls.config().ip_alg,
        cls.len()
    );
    cls.set_ip_alg(IpAlg::Mbt)?;
    println!("switched back to {} for line-rate lookups", cls.config().ip_alg);
    Ok(())
}
